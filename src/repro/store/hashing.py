"""Content hashing shared by the artifact store and the provenance ledger.

One streaming SHA-256 implementation serves every layer that needs a
content fingerprint: the store's freshness stamps, the ``.npf`` twin
validation, and :mod:`repro.obs.provenance`.  A :class:`HashCache`
memoizes digests by ``(size, mtime_ns)`` so a file the pipeline touches
several times per run — written by Curate, stamped by the engine,
recorded by the ledger — is read from disk exactly once.
"""

from __future__ import annotations

import hashlib
import os
import threading

__all__ = ["file_sha256", "HashCache", "default_hash_cache"]


def file_sha256(path: str | os.PathLike, chunk: int = 1 << 20) -> str:
    """Streaming SHA-256 of a file's content (mtime-independent)."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                break
            h.update(block)
    return h.hexdigest()


class HashCache:
    """Thread-safe digest memo keyed by the file's stat identity.

    The cache key is ``(st_size, st_mtime_ns)``: any rewrite that
    changes either re-hashes; an unchanged file costs one ``stat``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cache: dict[str, tuple[tuple[int, int], str]] = {}

    def sha256(self, path: str | os.PathLike) -> str:
        ap = os.path.abspath(os.fspath(path))
        st = os.stat(ap)
        key = (st.st_size, st.st_mtime_ns)
        with self._lock:
            hit = self._cache.get(ap)
        if hit is not None and hit[0] == key:
            return hit[1]
        digest = file_sha256(ap)
        with self._lock:
            self._cache[ap] = (key, digest)
        return digest

    def clear(self) -> None:
        """Drop every memoized digest (benchmark cold paths)."""
        with self._lock:
            self._cache.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)


#: process-wide cache: the ledger, the store, and the transparent
#: ``.npf``-twin reader all share one digest memo
_DEFAULT = HashCache()


def default_hash_cache() -> HashCache:
    return _DEFAULT
