"""Typed, content-addressed workflow artifacts.

The paper's Swift/T composition infers its dataflow graph from *file
references*; this package makes those references first-class.  An
:class:`Artifact` is a typed handle (logical name, format, schema hint)
that still walks and quacks like a path (``os.PathLike``), and an
:class:`ArtifactStore` owns the run root's layout, the in-run frame
memo, ``.npf``-twin format negotiation, and the hash-based freshness
stamps the flow engine uses for task caching.  The streaming SHA-256 in
:mod:`repro.store.hashing` is the one implementation the provenance
ledger shares.
"""

from repro.store.artifact import Artifact, FORMATS
from repro.store.hashing import HashCache, default_hash_cache, file_sha256
from repro.store.store import (
    LAYOUT,
    ArtifactStore,
    read_table_fast,
    iter_table_fast,
    resolve_table_path,
)

__all__ = [
    "Artifact",
    "FORMATS",
    "LAYOUT",
    "ArtifactStore",
    "HashCache",
    "default_hash_cache",
    "file_sha256",
    "read_table_fast",
    "iter_table_fast",
    "resolve_table_path",
]
