"""The typed artifact handle.

An :class:`Artifact` is what the workflow layers pass around instead of
bare path strings: a logical name, a resolved location, a declared
format, and an optional schema hint.  It implements ``os.PathLike`` so
every existing consumer of paths — ``open``, ``os.path.*``, the flow
engine's dataflow inference — accepts a handle unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

__all__ = ["Artifact", "FORMATS"]

#: known formats and their canonical file extension
FORMATS = {
    "pipe": ".txt",       # sacct -P interchange text
    "csv": ".csv",        # curated interchange tables
    "npf": ".npf",        # binary columnar Frame (hot-path reloads)
    "html": ".html",
    "png": ".png",
    "md": ".md",
    "json": ".json",
}


@dataclass(frozen=True)
class Artifact:
    """One logical workflow artifact.

    ``schema`` is a column-name hint for tabular formats (``csv`` /
    ``npf``); presentation formats leave it ``None``.
    """

    name: str                            # logical name ("2024-03-jobs")
    path: str                            # resolved on-disk location
    fmt: str                             # key of FORMATS
    schema: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.fmt not in FORMATS:
            raise ValueError(f"unknown artifact format {self.fmt!r}; "
                             f"have {sorted(FORMATS)}")

    def __fspath__(self) -> str:
        return self.path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def with_fmt(self, fmt: str) -> "Artifact":
        """The sibling artifact in another format (same directory and
        stem, the new format's extension) — e.g. a CSV's ``.npf`` twin."""
        stem, _ = os.path.splitext(self.path)
        return replace(self, fmt=fmt, path=stem + FORMATS[fmt],
                       schema=self.schema)

    @classmethod
    def in_dir(cls, dirpath: str | os.PathLike, name: str, fmt: str,
               schema: tuple[str, ...] | None = None) -> "Artifact":
        """A typed handle for ``name`` in ``dirpath`` — the format owns
        the extension, so callers never spell ``.csv``/``.npf`` (lint
        rule RL041 flags raw extension literals in path construction).
        Prefer :meth:`repro.store.ArtifactStore.declare` when a store
        owns the run layout; this is the store-free equivalent for
        stages handed a bare output directory."""
        return cls(name=name, fmt=fmt,
                   path=os.path.join(os.fspath(dirpath),
                                     name + FORMATS[fmt]),
                   schema=tuple(schema) if schema else None)

    @classmethod
    def at(cls, path: str | os.PathLike, fmt: str | None = None,
           name: str | None = None,
           schema: tuple[str, ...] | None = None) -> "Artifact":
        """Wrap an existing path; format inferred from the extension
        when not given (unknown extensions become ``pipe`` text)."""
        p = os.fspath(path)
        if fmt is None:
            ext = os.path.splitext(p)[1].lower()
            fmt = next((k for k, v in FORMATS.items() if v == ext), "pipe")
        stem = os.path.splitext(os.path.basename(p))[0]
        return cls(name=name or stem, path=p, fmt=fmt, schema=schema)
