"""The artifact store: workdir layout, caching, format negotiation.

An :class:`ArtifactStore` owns one run root.  It hands out typed
:class:`~repro.store.artifact.Artifact` handles for every file a
workflow touches (sacct pipe text under ``cache/``, curated tables under
``data/``, charts, PNGs, LLM reports), and provides the three services
the string-path plumbing it replaces could not:

- **in-run frame memo** — :meth:`load_frame` parses each table once per
  run, no matter how many plot/advisor/volume stages read it, and is
  safe under the flow engine's worker pool;
- **format negotiation** — a CSV whose ``.npf`` twin carries a matching
  ``source_sha256`` is transparently served from the binary twin
  (:func:`read_table_fast` gives the same behaviour store-free);
- **content-addressed freshness stamps** — :meth:`record_stamp` /
  :meth:`task_is_fresh` let the flow engine skip a cached task because
  its input *content* is unchanged, not merely because mtimes happen to
  be ordered.
"""

from __future__ import annotations

import json
import os
import threading

from repro._util.errors import ConfigError, DataError
from repro.frame import Frame
from repro.frame.io import DEFAULT_CHUNK_ROWS, iter_table, read_table, sniff_npf
from repro.store.artifact import FORMATS, Artifact
from repro.store.hashing import HashCache, default_hash_cache

__all__ = ["ArtifactStore", "read_table_fast", "iter_table_fast",
           "resolve_table_path"]

#: default subdirectory per format (the workflow's historical layout)
LAYOUT = {
    "pipe": "cache",
    "csv": "data",
    "npf": "data",
    "html": "charts",
    "png": "png",
    "md": "llm",
    "json": "data",
}

_STAMP_DIR = ".store"
_STAMP_FILE = "stamps.json"


def resolve_table_path(path: str | os.PathLike, infer: bool = True,
                       hash_cache: HashCache | None = None) -> str:
    """The cheapest valid source for a tabular artifact.

    For a ``.csv`` whose sibling ``.npf`` twin exists and whose header
    records the CSV's current SHA-256 (and the same inference mode),
    return the twin; otherwise the path unchanged.  A stale or absent
    twin silently falls back to the text parse — correctness never
    depends on the binary cache.
    """
    p = os.fspath(path)
    if not (infer and p.endswith(".csv")):
        return p
    twin = p[:-4] + FORMATS["npf"]
    if not (os.path.exists(twin) and os.path.exists(p)):
        return p
    try:
        meta = sniff_npf(twin).get("meta", {})
    except (DataError, OSError):
        return p
    want = meta.get("source_sha256")
    if not want or meta.get("infer", True) is not True:
        return p
    cache = hash_cache or default_hash_cache()
    try:
        if cache.sha256(p) == want:
            return twin
    except OSError:
        pass
    return p


def read_table_fast(path: str | os.PathLike, infer: bool = True,
                    hash_cache: HashCache | None = None) -> Frame:
    """:func:`repro.frame.io.read_table` with transparent ``.npf``-twin
    negotiation.  Accepts either format directly."""
    return read_table(resolve_table_path(path, infer=infer,
                                         hash_cache=hash_cache),
                      infer=infer)


def iter_table_fast(path: str | os.PathLike,
                    chunk_rows: int = DEFAULT_CHUNK_ROWS,
                    infer: bool = True,
                    hash_cache: HashCache | None = None):
    """:func:`repro.frame.io.iter_table` with transparent ``.npf``-twin
    negotiation: a CSV whose twin is current streams from the binary,
    so chunked analytics get mmap slicing instead of text parsing."""
    yield from iter_table(resolve_table_path(path, infer=infer,
                                             hash_cache=hash_cache),
                          chunk_rows=chunk_rows, infer=infer)


class _PendingFrame:
    """One in-flight or completed table load."""

    __slots__ = ("ready", "frame", "error")

    def __init__(self) -> None:
        self.ready = threading.Event()
        self.frame: Frame | None = None
        self.error: BaseException | None = None


class ArtifactStore:
    """Typed artifact handles plus caching for one run root.

    ``obs`` is an optional :class:`repro.obs.RunContext`; when present
    the store reports ``store.loads`` / ``store.memo_hits`` /
    ``store.npf_reads`` counters (the store never *imports* the obs
    layer — it only calls the context it is handed).
    """

    def __init__(self, root: str | os.PathLike, obs=None,
                 hash_cache: HashCache | None = None) -> None:
        self.root = os.path.abspath(os.fspath(root))
        self.obs = obs
        self.hashes = hash_cache or default_hash_cache()
        self._frames: dict[tuple, _PendingFrame] = {}
        self._frame_lock = threading.Lock()
        self._stamp_lock = threading.Lock()
        self._stamps: dict[str, dict] | None = None

    # -- layout ------------------------------------------------------------------

    def dir_for(self, fmt: str) -> str:
        """The root-relative directory a format lives in."""
        try:
            return os.path.join(self.root, LAYOUT[fmt])
        except KeyError:
            raise ConfigError(f"no layout for format {fmt!r}") from None

    def declare(self, name: str, fmt: str, subdir: str | None = None,
                schema=None) -> Artifact:
        """A typed handle for logical ``name`` in format ``fmt``.

        Declaration is pure path arithmetic — nothing touches disk, so
        handles can be built before, during, or after the run equally.
        """
        base = os.path.join(self.root, subdir) if subdir else \
            self.dir_for(fmt)
        return Artifact(name=name, fmt=fmt,
                        path=os.path.join(base, name + FORMATS[fmt]),
                        schema=tuple(schema) if schema else None)

    def _rel(self, path: str | os.PathLike) -> str:
        """Root-relative posix path (ledger-compatible normalization)."""
        p = os.path.normpath(os.fspath(path))
        ap = os.path.abspath(p)
        if ap == self.root or ap.startswith(self.root + os.sep):
            p = os.path.relpath(ap, self.root)
        return p.replace(os.sep, "/")

    # -- hashing -----------------------------------------------------------------

    def sha256(self, path: str | os.PathLike) -> str:
        """Memoized streaming content hash (shared with provenance)."""
        return self.hashes.sha256(path)

    # -- frame loading (the in-run parse-once memo) --------------------------------

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.counter(name).inc()

    def load_frame(self, artifact: Artifact | str | os.PathLike,
                   infer: bool = True) -> Frame:
        """Load a tabular artifact, once per content per run.

        Concurrent callers for the same table block on the first load
        and share the resulting Frame (treat as read-only, as Frame
        documents).  The memo key includes the file's stat identity, so
        a rewrite between tasks is picked up, never served stale.
        """
        path = resolve_table_path(artifact, infer=infer,
                                  hash_cache=self.hashes)
        st = os.stat(path)
        key = (path, st.st_size, st.st_mtime_ns, infer)
        with self._frame_lock:
            entry = self._frames.get(key)
            owner = entry is None
            if owner:
                entry = self._frames[key] = _PendingFrame()
        if not owner:
            entry.ready.wait()
            self._count("store.memo_hits")
            if entry.error is not None:
                raise entry.error
            return entry.frame
        try:
            entry.frame = read_table(path, infer=infer)
        except BaseException as exc:
            entry.error = exc
            with self._frame_lock:      # failed loads are retryable
                self._frames.pop(key, None)
            raise
        finally:
            entry.ready.set()
        self._count("store.loads")
        if path.endswith(FORMATS["npf"]):
            self._count("store.npf_reads")
        return entry.frame

    # -- freshness stamps (hash-based task caching) --------------------------------

    def _stamp_path(self) -> str:
        return os.path.join(self.root, _STAMP_DIR, _STAMP_FILE)

    def _load_stamps_locked(self) -> dict[str, dict]:
        if self._stamps is None:
            try:
                with open(self._stamp_path(), encoding="utf-8") as fh:
                    payload = json.load(fh)
                self._stamps = dict(payload.get("tasks", {}))
            except (OSError, ValueError):
                self._stamps = {}
        return self._stamps

    def task_is_fresh(self, name: str, inputs, outputs) -> bool | None:
        """Hash-verified freshness of one cached task.

        ``True``/``False`` when a stamp for ``name`` covers exactly the
        declared files; ``None`` when no comparable stamp exists (the
        caller falls back to its mtime heuristic).
        """
        with self._stamp_lock:
            stamp = self._load_stamps_locked().get(name)
        if stamp is None:
            return None
        want_in = {self._rel(p) for p in inputs}
        want_out = {self._rel(p) for p in outputs}
        ins, outs = stamp.get("inputs", {}), stamp.get("outputs", {})
        if set(ins) != want_in or set(outs) != want_out:
            return None                 # declaration changed: re-stamp
        try:
            for rel, sha in {**ins, **outs}.items():
                if self.sha256(os.path.join(self.root, rel)) != sha:
                    return False
        except OSError:
            return False                # a declared file is missing
        return True

    def record_stamp(self, name: str, inputs, outputs) -> None:
        """Persist the content hashes a completed task consumed and
        produced (atomic rewrite; survives across processes)."""
        def digest(paths) -> dict[str, str]:
            out = {}
            for p in paths:
                try:
                    out[self._rel(p)] = self.sha256(p)
                except OSError:
                    pass                # undeclared-in-practice file
            return out

        entry = {"inputs": digest(inputs), "outputs": digest(outputs)}
        with self._stamp_lock:
            stamps = self._load_stamps_locked()
            stamps[name] = entry
            path = self._stamp_path()
            os.makedirs(os.path.dirname(path), exist_ok=True)
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": 1, "tasks": stamps}, fh,
                          indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, path)
