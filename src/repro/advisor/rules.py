"""The rule base of the policy advisor.

Each rule examines one analytics summary and, when its trigger fires,
emits a :class:`Recommendation` with the measured evidence inline.  The
rules encode the policy levers the paper's Sections 1, 4 and 6 discuss:
walltime prediction, near-real-time QOS, debug/interactive partitions,
user support targeting, backfill tuning, and node sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import DataError
from repro.analytics.backfill import BackfillSummary
from repro.analytics.scale import ScaleSummary
from repro.analytics.states import StateSummary
from repro.analytics.utilization import UtilizationSummary
from repro.analytics.waits import WaitSummary

__all__ = ["Recommendation", "PolicyAdvisor"]

SEVERITIES = ("info", "advisory", "action")


@dataclass(frozen=True)
class Recommendation:
    """One grounded policy recommendation."""

    rule_id: str
    title: str
    severity: str                  # info | advisory | action
    evidence: str                  # measured numbers, human-readable
    proposal: str                  # what to change
    paper_basis: str               # where the paper motivates this
    topics: tuple[str, ...] = field(default=())

    def render(self) -> str:
        return (f"[{self.severity.upper()}] {self.title}\n"
                f"  evidence: {self.evidence}\n"
                f"  proposal: {self.proposal}\n"
                f"  basis:    {self.paper_basis}")


class PolicyAdvisor:
    """Evaluate analytics summaries against the policy rule base."""

    def __init__(self, *, waits: WaitSummary | None = None,
                 states: StateSummary | None = None,
                 backfill: BackfillSummary | None = None,
                 scale: ScaleSummary | None = None,
                 util: UtilizationSummary | None = None) -> None:
        self.waits = waits
        self.states = states
        self.backfill = backfill
        self.scale = scale
        self.util = util
        self._recs: list[Recommendation] | None = None

    # -- evaluation -------------------------------------------------------------

    def recommendations(self) -> list[Recommendation]:
        """All firing recommendations, most severe first."""
        if self._recs is None:
            recs: list[Recommendation] = []
            for rule in (self._rule_walltime_prediction,
                         self._rule_reclaim_via_backfill,
                         self._rule_wait_spikes,
                         self._rule_pending_cancels,
                         self._rule_failure_concentration,
                         self._rule_small_job_turnover,
                         self._rule_underutilization,
                         self._rule_timeout_guidance):
                rec = rule()
                if rec is not None:
                    recs.append(rec)
            order = {s: i for i, s in enumerate(reversed(SEVERITIES))}
            recs.sort(key=lambda r: order[r.severity])
            self._recs = recs
        return self._recs

    def report(self) -> str:
        recs = self.recommendations()
        if not recs:
            return "No policy recommendations fire on this dataset."
        return "\n\n".join(r.render() for r in recs)

    # -- conversational interface ----------------------------------------------------

    def ask(self, question: str) -> str:
        """Answer a free-form question with the matching recommendations.

        Keyword routing over recommendation topics — the 'conversational'
        layer the paper's future work sketches.
        """
        q = question.lower().strip()
        if not q:
            raise DataError("empty question")
        matched = [r for r in self.recommendations()
                   if any(t in q for t in r.topics)]
        if not matched:
            topics = sorted({t for r in self.recommendations()
                             for t in r.topics})
            return ("Nothing in the current data speaks to that. "
                    f"I can discuss: {', '.join(topics)}.")
        return "\n\n".join(r.render() for r in matched)

    # -- rules -----------------------------------------------------------------------

    def _rule_walltime_prediction(self) -> Recommendation | None:
        bf = self.backfill
        if bf is None or bf.median_ratio_all >= 0.5:
            return None
        return Recommendation(
            rule_id="walltime-prediction",
            title="Deploy history-based walltime prediction",
            severity="action",
            evidence=(f"median actual/requested walltime is "
                      f"{bf.median_ratio_all:.2f}; "
                      f"{bf.frac_under_half:.0%} of jobs use under half "
                      f"their request; "
                      f"{bf.reclaimable_node_hours:,.0f} node-hours "
                      f"requested but unused"),
            proposal=("predict per-user limits from accounting history "
                      "(repro.predict.WalltimePredictor) and offer them "
                      "at submission; see the reclamation what-if for "
                      "the measured wait improvement"),
            paper_basis="Sections 4.1/6: 'embedding AI-predicted walltime "
                        "estimation ... dynamic rescheduling and time "
                        "reclamation'",
            topics=("walltime", "request", "overestimat", "reclaim",
                    "predict"),
        )

    def _rule_reclaim_via_backfill(self) -> Recommendation | None:
        bf = self.backfill
        if bf is None or bf.n_jobs == 0:
            return None
        frac_bf = bf.n_backfilled / bf.n_jobs
        if frac_bf >= 0.05 or bf.median_ratio_all >= 0.5:
            return None
        return Recommendation(
            rule_id="backfill-tuning",
            title="Backfill is underused despite loose requests",
            severity="advisory",
            evidence=(f"only {frac_bf:.1%} of jobs started via backfill "
                      f"while requests inflate runtimes by "
                      f"{1 / max(bf.median_ratio_all, 1e-6):.1f}x"),
            proposal="raise the backfill scan depth / interval, or "
                     "shorten default walltime limits on small partitions",
            paper_basis="Section 4.1: backfilled jobs 'complete in less "
                        "time than requested, revealing underutilization'",
            topics=("backfill", "scan", "depth"),
        )

    def _rule_wait_spikes(self) -> Recommendation | None:
        w = self.waits
        if w is None or not w.spike_months:
            return None
        return Recommendation(
            rule_id="wait-spikes",
            title="Queue-wait spikes detected in specific months",
            severity="advisory",
            evidence=(f"months {', '.join(w.spike_months)} show median "
                      f"waits above 2x the global median "
                      f"({w.overall_median:.0f}s)"),
            proposal="correlate with maintenance windows and campaign "
                     "bursts; consider a surge QOS or temporary "
                     "reservation policy for campaign starts",
            paper_basis="Section 4.1: 'spikes in wait times that could be "
                        "linked to specific usage patterns or policy "
                        "inefficiencies'",
            topics=("spike", "wait", "queue", "month"),
        )

    def _rule_pending_cancels(self) -> Recommendation | None:
        w = self.waits
        if w is None or "CANCELLED" not in w.by_state:
            return None
        count, med, p95 = w.by_state["CANCELLED"]
        total = sum(c for c, _, _ in w.by_state.values())
        if count / max(1, total) < 0.1 or p95 < 2 * 3600:
            return None
        return Recommendation(
            rule_id="pending-cancellations",
            title="Users abandon long-queued jobs",
            severity="advisory",
            evidence=(f"{count} cancellations ({count / total:.0%} of "
                      f"jobs) with p95 wait {p95:,.0f}s before the "
                      f"cancel"),
            proposal="surface expected start times at submission and "
                     "provide a fast debug/interactive lane for "
                     "exploratory work",
            paper_basis="Section 1: users 'encountering limitations in "
                        "responsiveness' under batch-oriented policies",
            topics=("cancel", "abandon", "responsiveness", "interactive"),
        )

    def _rule_failure_concentration(self) -> Recommendation | None:
        s = self.states
        if s is None or s.top5_failure_share < 0.3:
            return None
        return Recommendation(
            rule_id="failure-concentration",
            title="A handful of users dominate failures",
            severity="action",
            evidence=(f"top-5 users own {s.top5_failure_share:.0%} of all "
                      f"failed jobs (per-user failure-rate std "
                      f"{s.failure_rate_std:.2f})"),
            proposal="target user support/training at the heavy failers; "
                     "consider submission linting or canary runs for "
                     "their workflows",
            paper_basis="Section 4.1: per-user breakdowns 'guide training, "
                        "user support, or system configuration changes'",
            topics=("failure", "user", "support", "training"),
        )

    def _rule_small_job_turnover(self) -> Recommendation | None:
        sc = self.scale
        if sc is None or sc.frac_small_short < 0.7:
            return None
        return Recommendation(
            rule_id="small-job-turnover",
            title="Workload is dominated by small, short jobs",
            severity="advisory",
            evidence=(f"{sc.frac_small_short:.0%} of jobs use fewer than "
                      f"{sc.node_split} nodes for under "
                      f"{sc.elapsed_split_s / 3600:.0f}h"),
            proposal="tune for turnover: node-sharing, job arrays, a "
                     "high-throughput partition with short limits, and "
                     "scheduler intervals sized for small jobs",
            paper_basis="Section 4.3: Andes 'requires optimizations for "
                        "high job turnover and interactive usage'",
            topics=("small", "short", "turnover", "sharing", "array"),
        )

    def _rule_underutilization(self) -> Recommendation | None:
        u = self.util
        w = self.waits
        if u is None or w is None:
            return None
        if u.utilization > 0.5 or w.overall_median < 60:
            return None
        return Recommendation(
            rule_id="idle-capacity-with-queues",
            title="Capacity sits idle while jobs queue",
            severity="action",
            evidence=(f"utilization {u.utilization:.0%} yet median wait "
                      f"{w.overall_median:,.0f}s"),
            proposal="audit reservations and partition fences; allow "
                     "opportunistic/preemptible jobs to soak idle nodes",
            paper_basis="Section 5: 'preemptive and opportunistic "
                        "scheduling ... urgent or short jobs'",
            topics=("utilization", "idle", "preempt", "opportunistic"),
        )

    def _rule_timeout_guidance(self) -> Recommendation | None:
        bf = self.backfill
        if bf is None or bf.frac_timeout < 0.03:
            return None
        return Recommendation(
            rule_id="timeout-guidance",
            title="A visible share of jobs die at their walltime limit",
            severity="info",
            evidence=f"{bf.frac_timeout:.1%} of jobs end in TIMEOUT",
            proposal="pair walltime prediction with checkpoint/requeue "
                     "guidance so tightened limits do not lose work",
            paper_basis="Section 6: 'dynamic rescheduling' as the "
                        "complement of time reclamation",
            topics=("timeout", "checkpoint", "requeue", "walltime"),
        )
