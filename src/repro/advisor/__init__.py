"""Scheduling-policy advisor (future-work extension).

Section 6: "we aim to evaluate ... interactive agents that can guide
users through visual narratives and recommend scheduling strategies in a
more conversational and adaptive manner."  :class:`PolicyAdvisor` is
that agent, built the same way as the chart analyst: every
recommendation is grounded in measured analytics (never free-floating
text), carries its evidence, severity, and the paper passage motivating
it, and can be queried conversationally (:meth:`PolicyAdvisor.ask`).
"""

from repro.advisor.rules import Recommendation, PolicyAdvisor

__all__ = ["Recommendation", "PolicyAdvisor"]
