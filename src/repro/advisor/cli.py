"""The ``repro-advisor`` command: policy advice over any trace file.

Accepts a curated jobs table (CSV or binary ``.npf``, as written by the
Curate stage) or an SWF trace, runs the analytic battery, and prints
the advisor's report — or answers one question with ``--ask``.  A CSV
whose ``.npf`` twin is hash-valid is loaded from the twin.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._util.errors import ReproError
from repro.advisor import PolicyAdvisor
from repro.analytics import (
    nodes_vs_elapsed,
    states_per_user,
    utilization,
    wait_times,
    walltime_accuracy,
)
from repro.store import read_table_fast

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-advisor",
        description="scheduling-policy advice from a job trace")
    p.add_argument("input",
                   help="curated jobs table (.csv or .npf) or SWF trace")
    p.add_argument("--cpus-per-node", type=int, default=1,
                   help="cores per node for SWF processor counts")
    p.add_argument("--total-nodes", type=int, default=None,
                   help="system size for utilization (default: max "
                        "allocated nodes in the trace)")
    p.add_argument("--ask", default=None,
                   help="ask one question instead of the full report")
    return p


def _load(path: str, cpus_per_node: int):
    if path.endswith(".swf"):
        from repro.interop import swf_to_frame
        return swf_to_frame(path, cpus_per_node=cpus_per_node)
    return read_table_fast(path)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        jobs = _load(args.input, args.cpus_per_node)
        total_nodes = args.total_nodes or \
            int(np.asarray(jobs["NNodes"]).max())
        advisor = PolicyAdvisor(
            waits=wait_times(jobs),
            states=states_per_user(jobs, min_jobs=5),
            backfill=walltime_accuracy(jobs),
            scale=nodes_vs_elapsed(jobs),
            util=utilization(jobs, total_nodes=total_nodes),
        )
        print(f"# {len(jobs):,} jobs from {args.input} "
              f"(system size {total_nodes} nodes)\n")
        if args.ask:
            print(advisor.ask(args.ask))
        else:
            print(advisor.report())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
