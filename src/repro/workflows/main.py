"""The end-to-end scheduling-analysis workflow.

Every file the workflow touches is a typed :class:`repro.store.Artifact`
handed out by the run's :class:`repro.store.ArtifactStore`: stage wiring
in :meth:`SchedulingAnalysisWorkflow.build_engine` declares artifact
handles (not path strings), curated tables are loaded through the
store's in-run memo (each month parses at most once per run, shared
across every plot/advisor stage), and cached tasks are hash-stamped so
re-runs skip on content, not just mtime ordering.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro._util.errors import ConfigError, WorkflowError
from repro.advisor import PolicyAdvisor
from repro.analytics import (
    nodes_vs_elapsed,
    occupancy_timeline,
    states_per_user,
    utilization,
    volume_by_year,
    wait_times,
    walltime_accuracy,
)
from repro.cluster import get_system
from repro.charts import write_html
from repro.charts.figures import (
    fig1_volume_chart,
    fig3_nodes_vs_elapsed_chart,
    fig4_wait_times_chart,
    fig5_states_per_user_chart,
    fig6_walltime_chart,
    occupancy_chart,
)
from repro.charts.spec import ChartSpec
from repro.dashboard import DashboardBuilder, write_trace_page
from repro.flow import FlowEngine, FlowReport
from repro.frame import Frame, concat
from repro.llm import LLMClient
from repro.obs import RunContext
from repro.pipeline import (
    JOB_CSV_COLUMNS,
    STEP_CSV_COLUMNS,
    CurateStage,
    ObtainConfig,
    ObtainStage,
)
from repro.raster import html_to_png, save_primitives
from repro.sched import SimConfig, simulate_month
from repro.slurm.db import AccountingDB
from repro.slurm.emit import DEFAULT_MALFORMED_RATE
from repro.store import Artifact, ArtifactStore

__all__ = ["WorkflowConfig", "WorkflowResult", "SchedulingAnalysisWorkflow"]

#: the four field-specific plot stages of Section 3.1
_PLOT_KINDS = ("waits", "states", "backfill", "scale")


@dataclass(frozen=True)
class WorkflowConfig:
    """Everything the workflow invocation parameterizes.

    Mirrors the paper's CLI: ``-n N`` (workers), ``--date_spec/--dates``
    (months), ``--cache`` and ``--data`` locations, plus the simulator
    inputs that stand in for the real Slurm database.
    """

    system: str = "frontier"
    months: tuple[str, ...] = ("2024-03", "2024-06")
    workdir: str = "workflow-out"
    workers: int = 4
    seed: int = 0
    rate_scale: float = 0.05
    use_cache: bool = True
    enable_ai: bool = True            # the orange user-defined stages
    llm_backend: str = "chart-analyst"
    malformed_rate: float = DEFAULT_MALFORMED_RATE
    db: AccountingDB | None = None    # supply an existing database
    #: scheduler-config template for the synthesized database (scenario
    #: runs attach their injection stream here); per-month seeds and
    #: job-id bases are layered on top with dataclasses.replace
    sim_config: SimConfig | None = None
    #: trace-calibrated workload profile spec (see
    #: repro.workload.spec.profile_to_spec); None = the built-in
    #: workload for ``system``
    profile_spec: dict | None = None
    #: > 0 switches to paper-scale sharded execution: one continuous
    #: simulated timeline split into this many month groups, curated
    #: tables streamed out per month (repro.workflows.shard)
    shards: int = 0
    #: worker processes for the sharded build (1 = in-process)
    procs: int = 1
    #: run shard tasks as durable fabric jobs (crash-resumable)
    fabric: bool = False

    def __post_init__(self) -> None:
        if not self.months:
            raise ConfigError("workflow needs at least one month")
        months = list(self.months)
        if months != sorted(months):
            raise ConfigError("months must be sorted")
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.procs < 1:
            raise ConfigError(f"procs must be >= 1, got {self.procs}")
        if self.fabric and not self.shards:
            raise ConfigError("fabric mode requires sharded execution "
                              "(set shards > 0)")


@dataclass
class WorkflowResult:
    """Everything a run produced."""

    config: WorkflowConfig
    dashboard_path: str = ""
    chart_html: dict[str, str] = field(default_factory=dict)
    chart_png: dict[str, str] = field(default_factory=dict)
    insights: dict[str, str] = field(default_factory=dict)
    compares: dict[str, str] = field(default_factory=dict)
    advisor_report: str = ""
    curate_malformed: int = 0
    curate_rows: int = 0
    n_jobs: int = 0
    n_steps: int = 0
    flow_report: FlowReport | None = None
    #: the run's observability context (events, metrics, provenance)
    run_context: RunContext | None = None
    #: manifest name → path (events.jsonl / provenance.json /
    #: summary.json in the workdir)
    manifest: dict[str, str] = field(default_factory=dict)
    #: the dashboard's trace & provenance page
    trace_page: str = ""
    #: sharded-build report (None for the classic per-month path)
    shard_report: object = None


class SchedulingAnalysisWorkflow:
    """Build and run the full Figure-2 pipeline."""

    def __init__(self, config: WorkflowConfig) -> None:
        self.config = config
        self.result = WorkflowResult(config=config)
        #: one observability context per invocation: every layer below
        #: (engine, pipeline stages, scheduler, LLM client) reports
        #: through it, and run() serializes it as the run manifest
        self.obs = RunContext(root=config.workdir)
        self.result.run_context = self.obs
        #: the run's artifact store: workdir layout, the in-run frame
        #: memo, .npf-twin negotiation, and hash freshness stamps
        self.store = ArtifactStore(config.workdir, obs=self.obs)
        self._specs: dict[str, ChartSpec] = {}
        self._db = config.db
        self._lock = __import__("threading").Lock()

    # -- artifact handles ------------------------------------------------------

    def _pipe(self, month: str) -> Artifact:
        """The month's raw sacct pull (``cache/<system>-<month>.txt``)."""
        return self.store.declare(f"{self.config.system}-{month}", "pipe")

    def _jobs(self, month: str) -> Artifact:
        return self.store.declare(f"{month}-jobs", "csv",
                                  schema=JOB_CSV_COLUMNS)

    def _steps(self, month: str) -> Artifact:
        return self.store.declare(f"{month}-steps", "csv",
                                  schema=STEP_CSV_COLUMNS)

    def _chart(self, key: str) -> Artifact:
        return self.store.declare(key, "html")

    def _png_art(self, key: str) -> Artifact:
        return self.store.declare(key, "png")

    def _report_md(self, name: str) -> Artifact:
        return self.store.declare(name, "md")

    # -- curated-table loading (store memo: one parse per month per run) -------

    def _month_jobs(self, month: str) -> Frame:
        return self.store.load_frame(self._jobs(month))

    def _all_jobs(self) -> Frame:
        return concat([self._month_jobs(m) for m in self.config.months])

    def _all_steps(self) -> Frame:
        return concat([self.store.load_frame(self._steps(m))
                       for m in self.config.months])

    # -- stage bodies -------------------------------------------------------------

    def _ensure_db(self) -> AccountingDB:
        """The Slurm database (synthesized when not supplied).

        Guarded by a lock: concurrent Obtain tasks must not both
        synthesize it.
        """
        with self._lock:
            return self._ensure_db_locked()

    def _ensure_db_locked(self) -> AccountingDB:
        if self._db is None:
            from repro.workload.spec import profile_from_spec

            cfg = self.config
            base = cfg.sim_config or SimConfig()
            profile = profile_from_spec(cfg.profile_spec) \
                if cfg.profile_spec else None
            db = AccountingDB(cfg.system)
            for i, month in enumerate(cfg.months):
                res = simulate_month(
                    cfg.system, month, seed=cfg.seed + i,
                    rate_scale=cfg.rate_scale,
                    config=replace(base, seed=cfg.seed + i,
                                   first_jobid=400_000 + 1_000_000 * i),
                    profile=profile, obs=self.obs)
                db.extend(res.jobs)
            self._db = db
        return self._db

    def _obtain(self, month: str) -> None:
        cfg = ObtainConfig(month, month,
                           cache_dir=self.store.dir_for("pipe"),
                           use_cache=self.config.use_cache,
                           malformed_rate=self.config.malformed_rate,
                           seed=self.config.seed,
                           workers=self.config.workers)
        ObtainStage(self._ensure_db(), cfg, obs=self.obs).run()

    def _curate(self, month: str) -> None:
        stage = CurateStage(self.store.dir_for("csv"), obs=self.obs)
        _, _, report = stage.run(self._pipe(month), tag=month)
        with self._lock:
            self.result.curate_malformed += report.malformed
            self.result.curate_rows += report.input_rows

    def _shard_build(self) -> None:
        """Sharded replacement for every Obtain + Curate task.

        One continuous scheduler timeline over all months, split into
        ``cfg.shards`` chained boundary-state shards, with curated
        month tables streamed into the same ``data/`` artifacts the
        classic path writes.  Malformed-line injection is an emit-stage
        fault model of the sacct *pipe*; the sharded path finalizes
        records directly, so there is no pipe artifact and nothing to
        drop (``curate_malformed`` stays 0).
        """
        from repro.fabric import fabric_db_path
        from repro.workflows.shard import run_sharded

        cfg = self.config
        base = cfg.sim_config or SimConfig()
        self.result.shard_report = run_sharded(
            cfg.system, list(cfg.months), cfg.workdir,
            shards=cfg.shards, procs=cfg.procs, seed=cfg.seed,
            rate_scale=cfg.rate_scale,
            config=replace(base, seed=cfg.seed),
            profile_spec=cfg.profile_spec,
            fabric_db=fabric_db_path(cfg.workdir) if cfg.fabric else None,
            data_dir=self.store.dir_for("csv"), obs=self.obs)

    def _plot(self, month: str, kind: str) -> None:
        jobs = self._month_jobs(month)
        system = self.config.system
        if kind == "waits":
            spec = fig4_wait_times_chart(wait_times(jobs), system)
        elif kind == "states":
            spec = fig5_states_per_user_chart(states_per_user(jobs), system)
        elif kind == "backfill":
            spec = fig6_walltime_chart(walltime_accuracy(jobs), system)
        elif kind == "scale":
            spec = fig3_nodes_vs_elapsed_chart(nodes_vs_elapsed(jobs),
                                               system)
        else:
            raise ConfigError(f"unknown plot kind {kind!r}")
        # a fresh spec per month: the figure builders may memoize, so
        # the shared instance is never mutated in place
        spec = replace(spec, title=f"{spec.title} — {month}",
                       chart_id=f"{kind}-{month}")
        html = self._chart(f"{month}-{kind}")
        write_html(spec, html.path)
        save_primitives(spec, html.path)
        self._specs[f"{month}-{kind}"] = spec
        self.result.chart_html[f"{month}-{kind}"] = html.path

    def _plot_volume(self) -> None:
        jobs = self._all_jobs()
        steps = self._all_steps()
        self.result.n_jobs = len(jobs)
        self.result.n_steps = len(steps)
        spec = fig1_volume_chart(volume_by_year(jobs, steps),
                                 self.config.system)
        html = self._chart("volume")
        write_html(spec, html.path)
        save_primitives(spec, html.path)
        self._specs["volume"] = spec
        self.result.chart_html["volume"] = html.path

    def _total_nodes(self, jobs) -> int:
        try:
            return get_system(self.config.system).total_nodes
        except Exception:
            return int(jobs["NNodes"].max()) if len(jobs) else 1

    def _plot_occupancy(self) -> None:
        jobs = self._all_jobs()
        occ = occupancy_timeline(jobs, self._total_nodes(jobs))
        spec = occupancy_chart(occ, self.config.system)
        html = self._chart("occupancy")
        write_html(spec, html.path)
        save_primitives(spec, html.path)
        self._specs["occupancy"] = spec
        self.result.chart_html["occupancy"] = html.path

    def _html2png(self, key: str) -> None:
        html_path = self.result.chart_html[key]
        png = html_to_png(html_path, self._png_art(key).path)
        self.result.chart_png[key] = png

    def _insight(self, key: str) -> None:
        client = LLMClient(backend=self.config.llm_backend,
                           context=self.obs)
        resp = client.insight(self.result.chart_png[key])
        self.result.insights[key] = resp.text
        out = self._report_md(f"insight-{key}").path
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(f"# LLM insight — {key}\n\n{resp.text}\n")

    def _compare(self, key_a: str, key_b: str) -> None:
        client = LLMClient(backend=self.config.llm_backend,
                           context=self.obs)
        resp = client.compare(self.result.chart_png[key_a],
                              self.result.chart_png[key_b])
        name = f"{key_a}-vs-{key_b}"
        self.result.compares[name] = resp.text
        out = self._report_md(f"compare-{name}").path
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(f"# LLM compare — {name}\n\n{resp.text}\n")

    def _aggregate_llm_reports(self) -> None:
        """Write the two aggregate markdown files the paper publishes:
        single-file (insight) and double-file (compare) analyses."""
        single = self._report_md("llm_single_file_analysis").path
        os.makedirs(os.path.dirname(single), exist_ok=True)
        with open(single, "w", encoding="utf-8") as fh:
            fh.write("# Single-file LLM analyses\n\n")
            fh.write(f"Model: offline chart analyst "
                     f"(Gemma 3 stand-in), {len(self.result.insights)} "
                     f"charts.\n\n")
            for key in sorted(self.result.insights):
                fh.write(f"## {key}\n\n{self.result.insights[key]}\n\n")
        double = self._report_md("llm_double_file_analysis").path
        with open(double, "w", encoding="utf-8") as fh:
            fh.write("# Double-file LLM analyses\n\n")
            for name in sorted(self.result.compares):
                fh.write(f"## {name}\n\n{self.result.compares[name]}\n\n")

    def _advise(self) -> None:
        """The policy-advisor stage (future-work extension)."""
        jobs = self._all_jobs()
        try:
            total_nodes = get_system(self.config.system).total_nodes
        except Exception:
            total_nodes = int(jobs["NNodes"].max()) if len(jobs) else 1
        advisor = PolicyAdvisor(
            waits=wait_times(jobs),
            states=states_per_user(jobs, min_jobs=5),
            backfill=walltime_accuracy(jobs),
            scale=nodes_vs_elapsed(jobs),
            util=utilization(jobs, total_nodes=total_nodes),
        )
        self.result.advisor_report = advisor.report()
        out = self._report_md("policy-advisor").path
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            fh.write("# Policy advisor report\n\n"
                     + self.result.advisor_report + "\n")

    def _dashboard(self) -> None:
        builder = DashboardBuilder(
            f"HPC scheduling analysis — {self.config.system} "
            f"({self.config.months[0]} .. {self.config.months[-1]})")
        builder.add_stat("jobs", f"{self.result.n_jobs:,}")
        builder.add_stat("job-steps", f"{self.result.n_steps:,}")
        builder.add_stat("malformed dropped",
                         str(self.result.curate_malformed))
        builder.add_section("Volume", self._specs["volume"],
                            self.result.insights.get("volume", ""))
        builder.add_section("Occupancy", self._specs["occupancy"],
                            self.result.insights.get("occupancy", ""))
        for month in self.config.months:
            for kind in _PLOT_KINDS:
                key = f"{month}-{kind}"
                builder.add_section(f"{kind} {month}", self._specs[key],
                                    self.result.insights.get(key, ""))
        if self.result.advisor_report:
            builder.add_text_section("Policy advisor",
                                     self.result.advisor_report)
        self.result.dashboard_path = builder.write(
            self.store.declare("index", "html", subdir="dashboard").path)

    # -- composition (the linear task list of Section 3.3) -------------------------

    def build_engine(self) -> FlowEngine:
        cfg = self.config
        eng = FlowEngine(workers=cfg.workers, context=self.obs,
                         store=self.store)
        if cfg.shards:
            # paper-scale mode: one chained sharded build produces every
            # curated month table; downstream plot stages are unchanged
            # because the artifact names are identical
            shard_outs = []
            for month in cfg.months:
                jobs, steps = self._jobs(month), self._steps(month)
                shard_outs += [jobs, steps, jobs.with_fmt("npf"),
                               steps.with_fmt("npf")]
            eng.task("shard-build", self._shard_build,
                     outputs=shard_outs)
        for month in cfg.months:
            jobs, steps = self._jobs(month), self._steps(month)
            if not cfg.shards:
                pipe = self._pipe(month)
                eng.task(f"obtain-{month}",
                         lambda m=month: self._obtain(m),
                         outputs=[pipe])
                # curate is skipped on re-runs when the hash stamp
                # proves its tables still match the cached sacct pull's
                # content (incremental monthly updates)
                eng.task(f"curate-{month}",
                         lambda m=month: self._curate(m),
                         inputs=[pipe],
                         outputs=[jobs, steps, jobs.with_fmt("npf"),
                                  steps.with_fmt("npf")],
                         cache=cfg.use_cache)
            for kind in _PLOT_KINDS:
                eng.task(f"plot-{kind}-{month}",
                         lambda m=month, k=kind: self._plot(m, k),
                         inputs=[jobs],
                         outputs=[self._chart(f"{month}-{kind}")])
        all_jobs = [self._jobs(m) for m in cfg.months]
        all_steps = [self._steps(m) for m in cfg.months]
        eng.task("plot-volume", self._plot_volume,
                 inputs=all_jobs + all_steps,
                 outputs=[self._chart("volume")])
        eng.task("plot-occupancy", self._plot_occupancy,
                 inputs=all_jobs, outputs=[self._chart("occupancy")])

        keys = ["volume", "occupancy"] + \
            [f"{m}-{k}" for m in cfg.months for k in _PLOT_KINDS]
        dash_inputs: list[Artifact] = []
        if cfg.enable_ai:
            for key in keys:
                png = self._png_art(key)
                md = self._report_md(f"insight-{key}")
                eng.task(f"html2png-{key}",
                         lambda k=key: self._html2png(k),
                         inputs=[self._chart(key)], outputs=[png])
                eng.task(f"insight-{key}",
                         lambda k=key: self._insight(k),
                         inputs=[png], outputs=[md])
                dash_inputs.append(md)
            # cross-month compares on the wait-time charts (the paper's
            # March-vs-June example)
            months = list(cfg.months)
            compare_outs = []
            for a, b in zip(months, months[1:]):
                ka, kb = f"{a}-waits", f"{b}-waits"
                out = self._report_md(f"compare-{ka}-vs-{kb}")
                compare_outs.append(out)
                eng.task(f"compare-{a}-{b}",
                         lambda x=ka, y=kb: self._compare(x, y),
                         inputs=[self._png_art(ka), self._png_art(kb)],
                         outputs=[out])
            # the paper's published aggregate markdown artifacts
            eng.task("llm-reports", self._aggregate_llm_reports,
                     inputs=dash_inputs + compare_outs,
                     outputs=[
                         self._report_md("llm_single_file_analysis"),
                         self._report_md("llm_double_file_analysis"),
                     ])
        else:
            dash_inputs = [self._chart(key) for key in keys]
        advisor_md = self._report_md("policy-advisor")
        eng.task("advisor", self._advise, inputs=all_jobs,
                 outputs=[advisor_md])
        eng.task("dashboard", self._dashboard,
                 inputs=dash_inputs + [advisor_md],
                 after=["plot-volume", "plot-occupancy"] +
                       [f"plot-{k}-{m}" for m in cfg.months
                        for k in _PLOT_KINDS])
        return eng

    def _register_outputs(self, engine: FlowEngine) -> None:
        """Provenance sweep: every declared output artifact that exists
        on disk gets a ledger record (the Obtain/Curate stages already
        registered theirs inline; this covers charts, PNGs, LLM
        reports, and the dashboard, with the task's declared inputs as
        lineage)."""
        for name, task in engine.tasks.items():
            for out in task.outputs:
                if os.path.exists(out) and not self.obs.ledger.has(out):
                    self.obs.record_artifact(out, producer=name,
                                             inputs=task.inputs)

    def run(self) -> WorkflowResult:
        """Execute the workflow; raises on any stage failure.

        Whatever happens, the run manifest (``events.jsonl``,
        ``provenance.json``, ``summary.json``) and the trace page land
        in the workdir — a failed run is exactly when the provenance
        record matters most.
        """
        engine = self.build_engine()
        with self.obs.span("workflow", system=self.config.system,
                           months=len(self.config.months)):
            report = engine.run()
        self.result.flow_report = report
        self._register_outputs(engine)
        self.result.manifest = self.obs.write_manifest(self.config.workdir)
        self.result.trace_page = write_trace_page(
            self.obs, self.store.declare("trace", "html",
                                         subdir="dashboard").path)
        bad = report.failed()
        if bad:
            raise WorkflowError(
                f"{len(bad)} task(s) failed; first: {bad[0].name}\n"
                f"{bad[0].error}")
        return self.result
