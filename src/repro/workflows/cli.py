"""The ``repro-workflow`` command.

Mirrors the paper's invocation shape::

    swift-t -n N workflow.swift --date_spec=<granularity> --dates=<spec>
            --cache=<dir> --data=<dir>

becomes::

    repro-workflow -n N --system frontier --dates 2024-01:2024-06
                   --workdir out/ [--no-ai] [--seed S] [--rate-scale F]
"""

from __future__ import annotations

import argparse
import sys

from repro._util.errors import ReproError
from repro._util.tables import TextTable
from repro._util.timefmt import iter_months
from repro.flow import concurrency_profile
from repro.workflows.main import SchedulingAnalysisWorkflow, WorkflowConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-workflow",
        description="LLM-enabled HPC scheduling analysis workflow")
    p.add_argument("-n", "--workers", type=int, default=4,
                   help="physical concurrency (Swift/T -n)")
    p.add_argument("--system", default="frontier",
                   choices=["frontier", "andes", "testsys"],
                   help="system profile for the synthetic trace")
    p.add_argument("--dates", default="2024-03:2024-06",
                   help="month range START:END (inclusive), e.g. "
                        "2024-01:2024-06, or a single YYYY-MM")
    p.add_argument("--workdir", default="workflow-out",
                   help="output directory (cache/, data/, charts/, "
                        "png/, llm/, dashboard/)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rate-scale", type=float, default=0.05,
                   help="submission-rate multiplier for the synthetic "
                        "workload")
    p.add_argument("--shards", type=int, default=0,
                   help="paper-scale mode: simulate one continuous "
                        "timeline split into this many month groups "
                        "(0 = classic independent months)")
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes for the sharded build")
    p.add_argument("--fabric", action="store_true",
                   help="run shard tasks as durable fabric jobs "
                        "(requires --shards)")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore previously fetched data")
    p.add_argument("--no-ai", action="store_true",
                   help="skip the user-defined AI subworkflow")
    p.add_argument("--llm-backend", default="chart-analyst")
    return p


def _parse_dates(spec: str) -> tuple[str, ...]:
    if ":" in spec:
        start, end = spec.split(":", 1)
    else:
        start = end = spec
    return tuple(iter_months(start, end))


def _validate(args) -> tuple[str, ...]:
    """Reject malformed invocations before any work starts.

    A bad ``--dates``/``--workers`` spec is a usage error, not a
    workflow failure: one line on stderr and exit code 2 (argparse's
    own convention), never a traceback and never a partially-written
    workdir.
    """
    problems = []
    months: tuple[str, ...] = ()
    try:
        months = _parse_dates(args.dates)
    except ReproError as exc:
        problems.append(f"--dates {args.dates!r}: {exc}")
    if args.workers < 1:
        problems.append(f"--workers must be >= 1, got {args.workers}")
    if args.rate_scale <= 0:
        problems.append(
            f"--rate-scale must be > 0, got {args.rate_scale}")
    if args.shards < 0:
        problems.append(f"--shards must be >= 0, got {args.shards}")
    elif args.shards and months:
        if args.shards > len(months):
            problems.append(
                f"--shards {args.shards} exceeds the {len(months)} "
                f"requested months (a shard needs at least one month)")
        elif len(months) % args.shards:
            problems.append(
                f"--shards {args.shards} does not divide the "
                f"{len(months)} requested months evenly")
    if args.procs < 1:
        problems.append(f"--procs must be >= 1, got {args.procs}")
    if args.fabric and not args.shards:
        problems.append("--fabric requires --shards")
    if problems:
        print(f"error: {'; '.join(problems)}", file=sys.stderr)
        raise SystemExit(2)
    return months


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    months = _validate(args)
    try:
        cfg = WorkflowConfig(
            system=args.system, months=months, workdir=args.workdir,
            workers=args.workers, seed=args.seed,
            rate_scale=args.rate_scale, use_cache=not args.no_cache,
            enable_ai=not args.no_ai, llm_backend=args.llm_backend,
            shards=args.shards, procs=args.procs, fabric=args.fabric)
        result = SchedulingAnalysisWorkflow(cfg).run()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = result.flow_report
    assert report is not None
    peak, avg = concurrency_profile(report.trace)
    table = TextTable(["task", "status", "seconds"],
                      title=f"workflow tasks ({args.system}, "
                            f"{months[0]}..{months[-1]})")
    for name, res in sorted(report.results.items()):
        table.add_row([name, res.status, round(res.duration_s, 3)])
    print(table.render())
    print()
    print(f"jobs: {result.n_jobs:,}   job-steps: {result.n_steps:,}   "
          f"malformed dropped: {result.curate_malformed}")
    shard = result.shard_report
    if shard is not None:
        print(f"shards: {shard.shards} x {len(shard.months) // shard.shards}"
              f" month(s)   carried across cuts: {shard.carried_total:,}   "
              f"peak live jobs: {shard.live_jobs_hwm:,}")
    print(f"tasks: {len(report.results)}   wall: {report.wall_s:.1f}s   "
          f"peak concurrency: {peak}   avg: {avg:.2f}")
    print(f"dashboard: {result.dashboard_path}")
    if result.manifest:
        print(f"run manifest: {result.manifest['events']}  "
              f"{result.manifest['provenance']}")
        print(f"trace page: {result.trace_page}")
    if result.insights:
        print(f"LLM insights: {len(result.insights)}   "
              f"compares: {len(result.compares)}")
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
