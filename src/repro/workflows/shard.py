"""Paper-scale sharded execution: plan → simulate → handoff → emit.

The classic workflow simulates each month independently and holds whole
tables in memory — fine at demo ``rate_scale``, impossible at the
paper's full Frontier year (~1.5 M jobs, ~18 M steps).  This module runs
the year as ONE continuous scheduler timeline, partitioned into shards
of whole months:

1. **Simulate, chained.**  Shard *k* resumes from shard *k-1*'s
   :class:`~repro.sched.shard.ShardHandoff` (carried-over running jobs,
   queue, fairshare decay, RNG cursor, event heap), feeds its months'
   generator windows, and drains up to its cut — bit-identical to an
   unsharded chain by construction (``tests/test_sched_shard.py``
   proves it).  Finished jobs leave the core immediately as lightweight
   outcome rows, appended to a per-origin-month ``.npf`` spool.
2. **Emit, fanned out.**  Per month — in any order, on a process pool
   or as durable fabric jobs — the submission stream is regenerated
   from the seed, outcomes are finalized into accounting records with
   order-independent per-job RNG streams
   (:func:`~repro.sched.shard.finalize_outcomes`), and the records run
   through the real emit → parse → curate machinery
   (:func:`~repro.pipeline.curate.curate_records`) into the same
   ``data/<month>-jobs.csv`` / ``-steps.csv`` (+ ``.npf`` twin)
   artifacts the classic workflow produces.

No stage ever materializes more than roughly one month plus the live
boundary state: the simulate phase streams outcome rows out as they
finish, and the emit phase batches finalization.  Memory is therefore
bounded by the *busiest month*, not the year.
"""

from __future__ import annotations

import csv
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field

import numpy as np

from repro._util.errors import ConfigError, DataError, WorkflowError
from repro._util.timefmt import month_bounds
from repro.cluster import get_system
from repro.frame import Frame
from repro.frame.io import NpfAppender, _cell, iter_npf, read_csv, write_npf
from repro.pipeline.curate import (JOB_CSV_COLUMNS, STEP_CSV_COLUMNS,
                                   curate_records)
from repro.sched.injections import ScenarioInjections
from repro.sched.priority import PriorityModel
from repro.sched.shard import (SPOOL_COLUMNS, ChainSimulator, ShardHandoff,
                               finalize_outcomes)
from repro.sched.simulator import SimConfig
from repro.store import Artifact, default_hash_cache
from repro.workload.generate import WorkloadGenerator
from repro.workload.profiles import workload_for
from repro.workload.spec import profile_from_spec

__all__ = ["plan_shards", "run_sharded", "run_sim_shard", "run_emit_month",
           "simconfig_to_spec", "simconfig_from_spec", "ShardRunReport"]

#: outcomes finalized per batch in the emit phase (bounds peak record
#: objects, not correctness — finalization is order-independent)
DEFAULT_BATCH_ROWS = 50_000


# -- config serialization (worker processes receive JSON payloads) -----------------

def simconfig_to_spec(config: SimConfig) -> dict:
    """Flatten a :class:`SimConfig` to a JSON-safe dict."""
    return asdict(config)


def simconfig_from_spec(spec: dict) -> SimConfig:
    """Rebuild the :class:`SimConfig` a spec describes."""
    spec = dict(spec)
    spec["priority"] = PriorityModel(**spec["priority"])
    spec["maintenance"] = tuple(tuple(w) for w in spec["maintenance"])
    spec["scenario"] = ScenarioInjections.from_spec(spec["scenario"]) \
        if spec.get("scenario") else None
    return SimConfig(**spec)


# -- planning ----------------------------------------------------------------------

def plan_shards(months: list[str], shards: int) -> list[list[str]]:
    """Partition months into ``shards`` equal contiguous groups.

    Whole months per shard keep the cut points on generator-window
    boundaries (the only place :meth:`_SimCore.drain` may stop), and
    equal groups keep shard wall times comparable.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards > len(months):
        raise ConfigError(
            f"{shards} shards over {len(months)} months: a shard needs "
            f"at least one whole month")
    if len(months) % shards:
        raise ConfigError(
            f"{len(months)} months do not divide into {shards} equal "
            f"shards; pick a shard count that divides the month count")
    per = len(months) // shards
    return [list(months[i * per:(i + 1) * per]) for i in range(shards)]


def _spool_frame(rows: list[dict]) -> Frame:
    """Outcome rows as a fixed-dtype Frame (stable spool bytes)."""
    return Frame({
        "idx": np.asarray([r["idx"] for r in rows], dtype=np.int64),
        "state": np.asarray([r["state"] for r in rows], dtype=object),
        "eligible": np.asarray([r["eligible"] for r in rows],
                               dtype=np.int64),
        "start": np.asarray([r["start"] for r in rows], dtype=np.int64),
        "end": np.asarray([r["end"] for r in rows], dtype=np.int64),
        "reason": np.asarray([r["reason"] for r in rows], dtype=object),
        "backfilled": np.asarray([r["backfilled"] for r in rows],
                                 dtype=np.int64),
        "restarts": np.asarray([r["restarts"] for r in rows],
                               dtype=np.int64),
        "node_list": np.asarray([r["node_list"] for r in rows],
                                dtype=object),
    })


def _spool_path(spool_dir: str, month: str) -> str:
    return os.path.join(spool_dir, f"spool-{month}.npf")


# -- worker tasks (JSON in / JSON out: pool- and fabric-runnable) -------------------

def run_sim_shard(payload: dict, obs=None) -> dict:
    """Simulate one shard's months, spooling outcomes by origin month.

    Payload: ``system, months, seed, rate_scale, config`` (spec),
    ``profile`` (spec or None), ``prior_bases`` ([month, base, n] of
    every earlier window), ``handoff_in``/``handoff_out`` (paths or
    None), ``spool_dir``, ``final`` (bool: drain the queue dry after
    the last month), ``manifest_dir`` (optional per-shard obs manifest).
    """
    system = get_system(payload["system"])
    config = simconfig_from_spec(payload["config"])
    profile = profile_from_spec(payload["profile"]) \
        if payload.get("profile") else workload_for(payload["system"])
    gen = WorkloadGenerator(profile, seed=payload["seed"],
                            rate_scale=payload["rate_scale"])
    handoff = ShardHandoff.load(payload["handoff_in"]) \
        if payload.get("handoff_in") else None
    chain = ChainSimulator(system, config, handoff=handoff)

    ctx = None
    if payload.get("manifest_dir"):
        from repro.obs import RunContext
        ctx = RunContext(run_id=f"shard-{payload['months'][0]}")

    all_bases = [tuple(b) for b in payload.get("prior_bases", [])]
    my_bases: list[list] = []
    spool_rows: dict[str, int] = {}
    appenders: dict[str, NpfAppender] = {}
    spool_dir = payload["spool_dir"]
    os.makedirs(spool_dir, exist_ok=True)
    live_hwm = 0
    months = payload["months"]

    def origin_of(idx: int) -> str:
        for month, base, n in reversed(all_bases):
            if idx >= base:
                if idx < base + n:
                    return month
                break
        raise DataError(f"outcome idx {idx} maps to no window")

    try:
        for month in months:
            start, end = month_bounds(month)
            reqs = gen.generate(start, end)
            carried_in = len(chain.core.jobs)
            live_hwm = max(live_hwm, carried_in + len(reqs))
            base = chain.core.next_idx
            my_bases.append([month, base, len(reqs)])
            all_bases.append((month, base, len(reqs)))
            final = payload.get("final") and month == months[-1]
            if ctx is not None:
                with ctx.span(f"shard-window:{month}", jobs=len(reqs),
                              carried=carried_in):
                    outcomes = chain.run_window(
                        reqs, None if final else end)
            else:
                outcomes = chain.run_window(reqs, None if final else end)
            by_month: dict[str, list[dict]] = {}
            for out in outcomes:
                by_month.setdefault(origin_of(out["idx"]), []).append(out)
            for m, rows in sorted(by_month.items()):
                rows.sort(key=lambda r: r["idx"])
                app = appenders.get(m)
                if app is None:
                    app = appenders[m] = NpfAppender(_spool_path(
                        spool_dir, m))
                app.append(_spool_frame(rows))
                spool_rows[m] = spool_rows.get(m, 0) + len(rows)
    finally:
        for app in appenders.values():
            app.close()

    carried_out = len(chain.core.jobs)
    if payload.get("handoff_out"):
        chain.export(cut=month_bounds(months[-1])[1]).save(
            payload["handoff_out"])
    if ctx is not None:
        # recorded on the worker's own context so the merged manifest
        # carries sched.shard.* even when no orchestrator obs is wired
        ctx.metrics.counter("sched.shard.windows").inc(len(months))
        ctx.metrics.counter("sched.shard.carried_jobs").inc(carried_out)
        ctx.metrics.counter("sched.shard.spool_rows").inc(
            sum(spool_rows.values()))
        ctx.metrics.gauge("sched.shard.live_jobs_hwm").set_max(live_hwm)
        if payload.get("handoff_out"):
            ctx.metrics.counter("sched.shard.handoffs").inc()
        ctx.write_manifest(payload["manifest_dir"])
    return {"bases": my_bases, "spool_rows": spool_rows,
            "carried": carried_out, "live_hwm": live_hwm,
            "windows": len(months), "counters": chain.counters}


def run_emit_month(payload: dict, obs=None) -> dict:
    """Finalize and curate one origin month into its CSV artifacts.

    Payload: ``system, month, base, n, seed, rate_scale, config``
    (spec), ``profile`` (spec or None), ``spool`` (path), ``data_dir``,
    optional ``batch_rows`` and ``manifest_dir``.  Regenerates the
    month's submission stream from the seed (window generation is
    sharding-invariant), so only the lightweight outcome rows travel
    between phases.
    """
    system = get_system(payload["system"])
    config = simconfig_from_spec(payload["config"])
    profile = profile_from_spec(payload["profile"]) \
        if payload.get("profile") else workload_for(payload["system"])
    gen = WorkloadGenerator(profile, seed=payload["seed"],
                            rate_scale=payload["rate_scale"])
    month = payload["month"]
    base, n = int(payload["base"]), int(payload["n"])
    start, end = month_bounds(month)

    ctx = None
    if payload.get("manifest_dir"):
        from repro.obs import RunContext
        ctx = RunContext(run_id=f"emit-{month}")

    reqs = gen.generate(start, end)
    if len(reqs) != n:
        raise DataError(
            f"emit {month}: regenerated {len(reqs)} requests but the "
            f"simulate phase fed {n} — seed/profile/rate mismatch")

    outcomes: list[dict] = []
    spool = payload["spool"]
    if os.path.exists(spool):
        for chunk in iter_npf(spool):
            cols = {c: chunk[c] for c in SPOOL_COLUMNS}
            for i in range(len(chunk)):
                outcomes.append({
                    "idx": int(cols["idx"][i]),
                    "state": str(cols["state"][i]),
                    "eligible": int(cols["eligible"][i]),
                    "start": int(cols["start"][i]),
                    "end": int(cols["end"][i]),
                    "reason": str(cols["reason"][i]),
                    "backfilled": int(cols["backfilled"][i]),
                    "restarts": int(cols["restarts"][i]),
                    "node_list": str(cols["node_list"][i]),
                })
    if len(outcomes) != n:
        raise WorkflowError(
            f"emit {month}: {len(outcomes)} outcomes for {n} submitted "
            f"jobs — the simulate phase did not finish this month")
    outcomes.sort(key=lambda o: o["idx"])

    data_dir = payload["data_dir"]
    os.makedirs(data_dir, exist_ok=True)
    jobs_art = Artifact.in_dir(data_dir, f"{month}-jobs", "csv",
                               schema=tuple(JOB_CSV_COLUMNS))
    steps_art = Artifact.in_dir(data_dir, f"{month}-steps", "csv",
                                schema=tuple(STEP_CSV_COLUMNS))
    jobs_csv, steps_csv = jobs_art.path, steps_art.path
    twins = {jobs_csv: jobs_art.with_fmt("npf").path,
             steps_csv: steps_art.with_fmt("npf").path}
    batch_rows = int(payload.get("batch_rows") or DEFAULT_BATCH_ROWS)
    n_jobs = n_steps = 0
    with open(jobs_csv, "w", newline="", encoding="utf-8") as jf, \
            open(steps_csv, "w", newline="", encoding="utf-8") as sf:
        jw, sw = csv.writer(jf), csv.writer(sf)
        jw.writerow(JOB_CSV_COLUMNS)
        sw.writerow(STEP_CSV_COLUMNS)
        for lo in range(0, len(outcomes), batch_rows):
            records = finalize_outcomes(system, config, reqs, base,
                                        outcomes[lo:lo + batch_rows])
            job_rows, step_rows = curate_records(records)
            for row in job_rows:
                jw.writerow([_cell(row[c]) for c in JOB_CSV_COLUMNS])
            for row in step_rows:
                sw.writerow([_cell(row[c]) for c in STEP_CSV_COLUMNS])
            n_jobs += len(job_rows)
            n_steps += len(step_rows)
    for path, twin in twins.items():
        # the classic curate stage's .npf twin, byte-for-byte: the
        # parse result of the CSV, keyed to its content hash
        write_npf(read_csv(path), twin,
                  meta={"source": os.path.basename(path),
                        "source_sha256":
                            default_hash_cache().sha256(path),
                        "infer": True})
        if ctx is not None:
            ctx.record_artifact(path, producer=f"shard-emit:{month}",
                                inputs=(spool,))
            ctx.record_artifact(twin, producer=f"shard-emit:{month}",
                                inputs=(path,))
    if ctx is not None:
        ctx.write_manifest(payload["manifest_dir"])
    return {"month": month, "jobs_csv": jobs_csv, "steps_csv": steps_csv,
            "n_jobs": n_jobs, "n_steps": n_steps}


# -- dispatch (inline / process pool / fabric) --------------------------------------

_TASK_FNS = {"shard_sim": run_sim_shard, "shard_emit": run_emit_month}


class _Dispatcher:
    """Run worker tasks inline, on a process pool, or as fabric jobs."""

    def __init__(self, procs: int, fabric_db: str | None) -> None:
        if procs < 1:
            raise ConfigError(f"procs must be >= 1, got {procs}")
        self.procs = procs
        self.fabric_db = fabric_db

    def run_stage(self, kind: str, payloads: list[dict], *,
                  sequential: bool) -> list[dict]:
        if not payloads:
            return []
        if self.fabric_db:
            return self._run_fabric(kind, payloads, sequential)
        if self.procs > 1:
            with ProcessPoolExecutor(max_workers=self.procs) as pool:
                if sequential:
                    # shard chains must run in timeline order; a worker
                    # process still bounds the orchestrator's footprint
                    return [pool.submit(_TASK_FNS[kind], p).result()
                            for p in payloads]
                futures = [pool.submit(_TASK_FNS[kind], p)
                           for p in payloads]
                return [f.result() for f in futures]
        return [_TASK_FNS[kind](p) for p in payloads]

    def _run_fabric(self, kind: str, payloads: list[dict],
                    sequential: bool) -> list[dict]:
        from repro.fabric import FabricStore, Launcher

        store = FabricStore(self.fabric_db)
        try:
            groups = [[p] for p in payloads] if sequential else [payloads]
            results: list[dict] = []
            for group in groups:
                ids = [store.submit(kind, p).id for p in group]
                Launcher(store, workers=self.procs, idle_exit_s=0.2,
                         poll_s=0.02).run()
                for job_id in ids:
                    job = store.get(job_id)
                    if job is None or job.state != "done":
                        raise WorkflowError(
                            f"fabric {kind} job {job_id} ended "
                            f"{job.state if job else 'missing'}: "
                            f"{job.error if job else ''}")
                    results.append(job.result)
            return results
        finally:
            store.close()


# -- the orchestrator ---------------------------------------------------------------

@dataclass
class ShardRunReport:
    """Everything one sharded build produced."""

    months: list[str]
    shards: int
    procs: int
    #: [month, base, n] per window in timeline order
    bases: list[list] = field(default_factory=list)
    #: cumulative scheduler counters from the final shard
    counters: dict = field(default_factory=dict)
    #: month -> {"jobs": path, "steps": path}
    artifacts: dict = field(default_factory=dict)
    n_jobs: int = 0
    n_steps: int = 0
    carried_total: int = 0
    live_jobs_hwm: int = 0
    spool_rows: int = 0
    #: merged per-shard/per-emit manifest directory (or "")
    manifest_dir: str = ""


def run_sharded(system: str, months: list[str], out_dir: str, *,
                shards: int, procs: int = 1, seed: int = 0,
                rate_scale: float = 1.0, config: SimConfig | None = None,
                profile_spec: dict | None = None,
                fabric_db: str | None = None,
                data_dir: str | None = None,
                batch_rows: int = DEFAULT_BATCH_ROWS,
                manifests: bool = True, obs=None) -> ShardRunReport:
    """Build a sharded accounting dataset under ``out_dir``.

    Curated month tables land in ``data_dir`` (default
    ``out_dir/data`` — the classic workflow layout); handoffs, spools
    and per-shard manifests under ``out_dir/shards``.  ``obs`` is an
    optional :class:`repro.obs.RunContext` for the orchestrator-side
    spans and ``sched.shard.*`` metrics.
    """
    months = list(months)
    groups = plan_shards(months, shards)
    config = config or SimConfig(seed=seed)
    cfg_spec = simconfig_to_spec(config)
    shard_dir = os.path.join(out_dir, "shards")
    spool_dir = os.path.join(shard_dir, "spool")
    data_dir = data_dir or os.path.join(out_dir, "data")
    os.makedirs(spool_dir, exist_ok=True)
    dispatch = _Dispatcher(procs, fabric_db)
    report = ShardRunReport(months=months, shards=shards, procs=procs)

    def manifest_dir(name: str) -> str | None:
        return os.path.join(shard_dir, "manifests", name) \
            if manifests else None

    # phase 1: the simulate chain, one shard at a time
    handoff_prev: str | None = None
    manifest_dirs: list[str] = []
    for k, group in enumerate(groups):
        last = k == len(groups) - 1
        handoff_out = None if last else \
            os.path.join(shard_dir, f"handoff-{k:03d}.json.gz")
        payload = {"system": system, "months": group, "seed": seed,
                   "rate_scale": rate_scale, "config": cfg_spec,
                   "profile": profile_spec,
                   "prior_bases": report.bases,
                   "handoff_in": handoff_prev,
                   "handoff_out": handoff_out,
                   "spool_dir": spool_dir, "final": last,
                   "manifest_dir": manifest_dir(f"sim-{k:03d}")}
        if obs is not None:
            with obs.span(f"shard-sim:{k}", months=len(group)):
                res = dispatch.run_stage("shard_sim", [payload],
                                         sequential=True)[0]
        else:
            res = dispatch.run_stage("shard_sim", [payload],
                                     sequential=True)[0]
        report.bases.extend(res["bases"])
        report.counters = res["counters"]
        report.carried_total += res["carried"]
        report.live_jobs_hwm = max(report.live_jobs_hwm, res["live_hwm"])
        report.spool_rows += sum(res["spool_rows"].values())
        if payload["manifest_dir"]:
            manifest_dirs.append(payload["manifest_dir"])
        if obs is not None:
            obs.metrics.counter("sched.shard.windows").inc(res["windows"])
            obs.metrics.counter("sched.shard.carried_jobs").inc(
                res["carried"])
            obs.metrics.counter("sched.shard.spool_rows").inc(
                sum(res["spool_rows"].values()))
            obs.metrics.gauge("sched.shard.live_jobs_hwm").set_max(
                res["live_hwm"])
            if handoff_out:
                obs.metrics.counter("sched.shard.handoffs").inc()
        handoff_prev = handoff_out
    if obs is not None and report.counters.get("n_injections"):
        obs.metrics.counter("sched.scenario.injections").inc(
            report.counters["n_injections"])
        obs.metrics.counter("sched.scenario.victims").inc(
            report.counters["n_victims"])
        obs.metrics.counter("sched.scenario.shrunk").inc(
            report.counters["n_shrunk"])

    # phase 2: per-month emit fan-out
    base_by_month = {m: (b, n) for m, b, n in report.bases}
    payloads = []
    for month in months:
        base, n = base_by_month[month]
        payloads.append({"system": system, "month": month, "base": base,
                         "n": n, "seed": seed, "rate_scale": rate_scale,
                         "config": cfg_spec, "profile": profile_spec,
                         "spool": _spool_path(spool_dir, month),
                         "data_dir": data_dir, "batch_rows": batch_rows,
                         "manifest_dir": manifest_dir(f"emit-{month}")})
    if obs is not None:
        with obs.span("shard-emit", months=len(months)):
            emitted = dispatch.run_stage("shard_emit", payloads,
                                         sequential=False)
    else:
        emitted = dispatch.run_stage("shard_emit", payloads,
                                     sequential=False)
    for res in emitted:
        report.artifacts[res["month"]] = {"jobs": res["jobs_csv"],
                                          "steps": res["steps_csv"]}
        report.n_jobs += res["n_jobs"]
        report.n_steps += res["n_steps"]
    manifest_dirs.extend(p["manifest_dir"] for p in payloads
                         if p["manifest_dir"])

    if manifest_dirs:
        from repro.obs.merge import merge_manifests
        merged = os.path.join(shard_dir, "manifest")
        merge_manifests(manifest_dirs, merged,
                        run_id=f"sharded:{system}:{months[0]}"
                               f"..{months[-1]}")
        report.manifest_dir = merged
    return report
