"""The Section 4.3 portability study, automated.

"We collected data from Andes ... and applied the same workflow without
modification."  :class:`PortabilityStudy` runs the full analysis
workflow per system (identical configuration, only the system name
changes), then the federated comparison, and writes a cross-facility
report with the paper's three contrasts checked and a combined
dashboard.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro._util.errors import ConfigError
from repro._util.tables import TextTable
from repro.analytics import compare_systems, load_jobs
from repro.dashboard import DashboardBuilder
from repro.store import Artifact
from repro.workflows.main import SchedulingAnalysisWorkflow, WorkflowConfig

__all__ = ["PortabilityConfig", "PortabilityResult", "PortabilityStudy"]


@dataclass(frozen=True)
class PortabilityConfig:
    """Two-or-more systems, one analysis configuration."""

    systems: tuple[str, ...] = ("frontier", "andes")
    months: tuple[str, ...] = ("2024-03",)
    workdir: str = "portability-out"
    workers: int = 4
    seed: int = 0
    #: per-system submission-rate multipliers (defaults to 1.0)
    rate_scales: dict = field(default_factory=dict)
    enable_ai: bool = False

    def __post_init__(self) -> None:
        if len(self.systems) < 2:
            raise ConfigError("portability study needs >= 2 systems")
        if len(set(self.systems)) != len(self.systems):
            raise ConfigError("duplicate systems")


@dataclass
class PortabilityResult:
    per_system: dict = field(default_factory=dict)   # name -> WorkflowResult
    comparison_rows: list = field(default_factory=list)
    checks: dict = field(default_factory=dict)       # claim -> bool
    report_path: str = ""
    dashboard_path: str = ""

    @property
    def all_checks_hold(self) -> bool:
        return bool(self.checks) and all(self.checks.values())


class PortabilityStudy:
    """Run the same workflow on every system and compare."""

    def __init__(self, config: PortabilityConfig) -> None:
        self.config = config

    def run(self) -> PortabilityResult:
        cfg = self.config
        result = PortabilityResult()
        frames = {}
        for system in cfg.systems:
            wf_cfg = WorkflowConfig(
                system=system, months=cfg.months,
                workdir=os.path.join(cfg.workdir, system),
                workers=cfg.workers, seed=cfg.seed,
                rate_scale=cfg.rate_scales.get(system, 1.0),
                enable_ai=cfg.enable_ai)
            wf = SchedulingAnalysisWorkflow(wf_cfg)
            result.per_system[system] = wf.run()
            data_dir = os.path.join(cfg.workdir, system, "data")
            frames[system] = load_jobs(
                [Artifact.in_dir(data_dir, f"{m}-jobs", "csv").path
                 for m in cfg.months])

        comp = compare_systems(frames)
        result.comparison_rows = comp.delta_rows()
        # the Section 4.3 claims, checked between the first two systems
        big, small = cfg.systems[0], cfg.systems[1]
        b, s = comp.view(big), comp.view(small)
        result.checks = {
            "fig7_small_system_concentrates_small_short":
                s.scale.frac_small_short >= b.scale.frac_small_short,
            "fig8_small_system_failure_rate_lower":
                s.states.overall_failure_rate <=
                b.states.overall_failure_rate,
            "fig8_small_system_failure_variance_lower":
                s.states.failure_rate_std <= b.states.failure_rate_std,
            "fig9_small_system_requests_tighter":
                s.backfill.median_ratio_all >= b.backfill.median_ratio_all,
        }
        result.report_path = self._write_report(result)
        result.dashboard_path = self._write_dashboard(result)
        return result

    def _write_report(self, result: PortabilityResult) -> str:
        path = os.path.join(self.config.workdir, "portability.md")
        os.makedirs(self.config.workdir, exist_ok=True)
        table = TextTable(["metric"] + list(self.config.systems),
                          title="cross-facility comparison")
        by_metric: dict[str, dict[str, float]] = {}
        for metric, system, value in result.comparison_rows:
            by_metric.setdefault(metric, {})[system] = value
        for metric, values in by_metric.items():
            table.add_row([metric] + [round(values.get(s, 0.0), 4)
                                      for s in self.config.systems])
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("# Portability study (Section 4.3)\n\n```\n")
            fh.write(table.render())
            fh.write("\n```\n\n## Paper claims\n\n")
            for claim, ok in result.checks.items():
                fh.write(f"- {claim}: {'HOLDS' if ok else 'DIFFERS'}\n")
        return path

    def _write_dashboard(self, result: PortabilityResult) -> str:
        """One entry page: the comparison plus pointers to each
        system's full interactive dashboard (charts live there)."""
        builder = DashboardBuilder(
            "Portability study — " + " vs ".join(self.config.systems))
        builder.add_text_section("Comparison",
                                 open(result.report_path).read())
        for system, wf_result in result.per_system.items():
            builder.add_text_section(
                f"{system} dashboard",
                f"Full interactive dashboard: {wf_result.dashboard_path}")
        return builder.write(
            os.path.join(self.config.workdir, "index.html"))
