"""The composed end-to-end workflow (the ``workflow.swift`` analogue).

:class:`SchedulingAnalysisWorkflow` wires the paper's Figure 2 as a
:class:`~repro.flow.FlowEngine` task list: per month, *Obtain* →
*Curate* → four field-specific plot stages (concurrent) → *HTML2PNG* →
*LLM Insight*, with cross-month *LLM Compare* pairs and a final
*Dashboard* consolidation.  The task list is written linearly; the
engine extracts the concurrency.
"""

from repro.workflows.main import (
    SchedulingAnalysisWorkflow,
    WorkflowConfig,
    WorkflowResult,
)
from repro.workflows.portability import (
    PortabilityConfig,
    PortabilityResult,
    PortabilityStudy,
)

__all__ = [
    "SchedulingAnalysisWorkflow",
    "WorkflowConfig",
    "WorkflowResult",
    "PortabilityConfig",
    "PortabilityResult",
    "PortabilityStudy",
]
