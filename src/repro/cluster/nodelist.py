"""Slurm compact hostlist notation.

Slurm prints allocated nodes as e.g. ``frontier[00001-00003,00007]``.
The emitter uses :func:`compact_nodelist`; :func:`expand_nodelist` is the
inverse and is used by tests and by analytics that need per-node views.
"""

from __future__ import annotations

import re
from typing import Sequence

from repro._util.errors import DataError

__all__ = ["compact_nodelist", "expand_nodelist"]

_WIDTH = 5  # zero-padding width of node indices (frontier00001)


def compact_nodelist(prefix: str, ids: Sequence[int], width: int = _WIDTH) -> str:
    """Compact sorted node ids into Slurm hostlist notation.

    >>> compact_nodelist("frontier", [1, 2, 3, 7])
    'frontier[00001-00003,00007]'
    >>> compact_nodelist("andes", [12])
    'andes00012'
    """
    if not ids:
        return ""
    ids = sorted(set(int(i) for i in ids))
    if any(i < 0 for i in ids):
        raise DataError(f"negative node id in {ids[:5]}")
    if len(ids) == 1:
        return f"{prefix}{ids[0]:0{width}d}"
    runs: list[tuple[int, int]] = []
    lo = hi = ids[0]
    for i in ids[1:]:
        if i == hi + 1:
            hi = i
        else:
            runs.append((lo, hi))
            lo = hi = i
    runs.append((lo, hi))
    parts = [f"{a:0{width}d}" if a == b else f"{a:0{width}d}-{b:0{width}d}"
             for a, b in runs]
    return f"{prefix}[{','.join(parts)}]"


_SINGLE = re.compile(r"^([a-zA-Z_-]+)(\d+)$")
_BRACKET = re.compile(r"^([a-zA-Z_-]+)\[([0-9,\-]+)\]$")


def expand_nodelist(text: str) -> tuple[str, list[int]]:
    """Expand hostlist notation back to ``(prefix, sorted ids)``.

    >>> expand_nodelist("frontier[00001-00003,00007]")
    ('frontier', [1, 2, 3, 7])
    """
    text = text.strip()
    if not text:
        return ("", [])
    m = _SINGLE.match(text)
    if m:
        return m.group(1), [int(m.group(2))]
    m = _BRACKET.match(text)
    if not m:
        raise DataError(f"bad nodelist: {text!r}")
    prefix, body = m.group(1), m.group(2)
    ids: list[int] = []
    for part in body.split(","):
        if not part:
            raise DataError(f"bad nodelist segment in {text!r}")
        if "-" in part:
            lo_s, hi_s = part.split("-", 1)
            lo, hi = int(lo_s), int(hi_s)
            if hi < lo:
                raise DataError(f"reversed range {part!r} in {text!r}")
            ids.extend(range(lo, hi + 1))
        else:
            ids.append(int(part))
    return prefix, sorted(set(ids))
