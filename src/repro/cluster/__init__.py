"""Cluster descriptions: nodes, partitions, QOS, and system profiles.

The paper analyzes two OLCF systems with very different characters:

- **Frontier** — exascale, GPU-dense, 9,408 nodes; large parallel jobs,
  hero runs, heavy ``srun`` task parallelism;
- **Andes** — general-purpose, CPU-centric, 704 nodes; smaller,
  shorter, higher-turnover jobs.

:func:`get_system` returns a ready-made :class:`SystemProfile` for
``"frontier"``, ``"andes"`` or ``"testsys"`` (a tiny profile for tests),
and profiles can be built by hand for other sites — that is the
portability knob Section 4.3 exercises.
"""

from repro.cluster.machine import (
    Partition,
    QOS,
    SystemProfile,
    get_system,
    FRONTIER,
    ANDES,
    TESTSYS,
)
from repro.cluster.nodelist import compact_nodelist, expand_nodelist

__all__ = [
    "Partition",
    "QOS",
    "SystemProfile",
    "get_system",
    "FRONTIER",
    "ANDES",
    "TESTSYS",
    "compact_nodelist",
    "expand_nodelist",
]
