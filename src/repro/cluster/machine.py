"""System profiles: the static description of a cluster.

A :class:`SystemProfile` is everything the scheduler simulator and the
workload generator need to know about a machine: node counts and shapes,
partitions with their limits, QOS levels with their priority boosts, and
an energy model.  Profiles for Frontier-like and Andes-like systems are
provided; the figures in Section 4 are driven by these two.

Numbers are the public ones (Frontier: 9,408 nodes, 64-core Trento +
4 MI250X ≈ 8 GCDs, 512 GiB DDR; Andes: 704 nodes, 32-core Rome,
256 GiB).  Where the paper doesn't pin a configuration detail the
profile documents the assumption inline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import ConfigError

__all__ = ["Partition", "QOS", "SystemProfile", "get_system",
           "FRONTIER", "ANDES", "TESTSYS"]


@dataclass(frozen=True)
class Partition:
    """A Slurm partition with its scheduling limits."""

    name: str
    max_nodes: int                 # per-job node ceiling
    max_time_s: int                # per-job wall-time ceiling
    priority_tier: int = 0         # higher tier is scheduled first
    preemptible: bool = False
    #: nodes fenced exclusively for this partition (0 = shares the
    #: system pool) — e.g. Andes' 9-node gpu partition
    dedicated_nodes: int = 0

    def __post_init__(self) -> None:
        if self.max_nodes < 1:
            raise ConfigError(f"partition {self.name}: max_nodes < 1")
        if self.max_time_s < 60:
            raise ConfigError(f"partition {self.name}: max_time_s < 60")
        if self.dedicated_nodes < 0:
            raise ConfigError(f"partition {self.name}: negative fence")
        if self.dedicated_nodes and self.max_nodes > self.dedicated_nodes:
            raise ConfigError(
                f"partition {self.name}: max_nodes exceeds its fence")


@dataclass(frozen=True)
class QOS:
    """A quality-of-service level (priority boost + optional wall cap)."""

    name: str
    priority_boost: int = 0
    max_time_s: int | None = None
    usage_factor: float = 1.0      # charge multiplier
    #: jobs in this QOS may be preempted (requeued) by preemptors
    preemptable: bool = False
    #: jobs in this QOS may preempt preemptable jobs when blocked
    can_preempt: bool = False


@dataclass(frozen=True)
class SystemProfile:
    """Full static description of one HPC system."""

    name: str
    node_prefix: str
    total_nodes: int
    cpus_per_node: int
    gpus_per_node: int
    mem_per_node_kib: int
    partitions: tuple[Partition, ...]
    qos_levels: tuple[QOS, ...]
    #: average node power draw when allocated, watts (energy accounting)
    node_power_w: float = 500.0
    #: epoch seconds when the system entered production (Frontier: Apr 2023)
    production_start: int = 0

    def __post_init__(self) -> None:
        if self.total_nodes < 1:
            raise ConfigError(f"{self.name}: total_nodes < 1")
        if not self.partitions:
            raise ConfigError(f"{self.name}: needs at least one partition")
        names = [p.name for p in self.partitions]
        if len(names) != len(set(names)):
            raise ConfigError(f"{self.name}: duplicate partition names")
        for p in self.partitions:
            if p.max_nodes > self.total_nodes:
                raise ConfigError(
                    f"{self.name}/{p.name}: max_nodes exceeds system size")
        fenced = sum(p.dedicated_nodes for p in self.partitions)
        if fenced >= self.total_nodes:
            raise ConfigError(
                f"{self.name}: fenced nodes ({fenced}) leave no shared "
                f"pool (total {self.total_nodes})")

    def partition(self, name: str) -> Partition:
        for p in self.partitions:
            if p.name == name:
                return p
        raise ConfigError(f"{self.name}: no partition {name!r}")

    def qos(self, name: str) -> QOS:
        for q in self.qos_levels:
            if q.name == name:
                return q
        raise ConfigError(f"{self.name}: no QOS {name!r}")

    @property
    def total_cpus(self) -> int:
        return self.total_nodes * self.cpus_per_node


_STANDARD_QOS = (
    QOS("normal", priority_boost=0),
    QOS("debug", priority_boost=50_000, max_time_s=2 * 3600),
    # near-real-time QOS in the NERSC "realtime" mold — the emerging
    # workloads Section 1 motivates.  It may preempt standby work when
    # the simulator's preemption knob is on.
    QOS("urgent", priority_boost=200_000, max_time_s=4 * 3600,
        usage_factor=2.0, can_preempt=True),
    # discounted opportunistic tier (TACC "flex"-style): soaks idle
    # nodes, gets requeued when urgent work needs them
    QOS("standby", priority_boost=-50_000, usage_factor=0.5,
        preemptable=True),
)

#: Frontier-like exascale system.  Partition layout mirrors OLCF's
#: published batch/extended split; the "batch" partition admits
#: full-system jobs, "extended" takes long small jobs.
FRONTIER = SystemProfile(
    name="frontier",
    node_prefix="frontier",
    total_nodes=9408,
    cpus_per_node=56,          # 64-core Trento, 8 cores reserved for OS
    gpus_per_node=8,           # 4x MI250X = 8 GCDs
    mem_per_node_kib=512 * 1024**2,
    partitions=(
        Partition("batch", max_nodes=9408, max_time_s=24 * 3600,
                  priority_tier=1),
        Partition("extended", max_nodes=64, max_time_s=72 * 3600),
        Partition("debug", max_nodes=128, max_time_s=2 * 3600,
                  priority_tier=2),
    ),
    qos_levels=_STANDARD_QOS,
    node_power_w=560.0,        # ~21 MW / 9408 nodes at load, derated
    production_start=1_680_307_200,   # 2023-04-01
)

#: Andes-like general-purpose CPU cluster.
ANDES = SystemProfile(
    name="andes",
    node_prefix="andes",
    total_nodes=704,
    cpus_per_node=32,
    gpus_per_node=0,
    mem_per_node_kib=256 * 1024**2,
    partitions=(
        Partition("batch", max_nodes=384, max_time_s=48 * 3600,
                  priority_tier=1),
        Partition("gpu", max_nodes=9, max_time_s=48 * 3600,
                  dedicated_nodes=9),   # OLCF fences the GPU nodes
    ),
    qos_levels=_STANDARD_QOS,
    node_power_w=350.0,
    production_start=1_577_836_800,   # long in production
)

#: Tiny profile for fast tests.
TESTSYS = SystemProfile(
    name="testsys",
    node_prefix="test",
    total_nodes=16,
    cpus_per_node=8,
    gpus_per_node=0,
    mem_per_node_kib=64 * 1024**2,
    partitions=(
        Partition("batch", max_nodes=16, max_time_s=8 * 3600,
                  priority_tier=1),
        Partition("debug", max_nodes=4, max_time_s=3600, priority_tier=2),
    ),
    qos_levels=_STANDARD_QOS,
    node_power_w=100.0,
)

_SYSTEMS = {p.name: p for p in (FRONTIER, ANDES, TESTSYS)}


def get_system(name: str) -> SystemProfile:
    """Look up a built-in system profile by name."""
    try:
        return _SYSTEMS[name]
    except KeyError:
        raise ConfigError(
            f"unknown system {name!r}; have {sorted(_SYSTEMS)}") from None
