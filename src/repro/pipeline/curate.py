"""The Curate stage: clean, normalize, and reformat to CSV.

Per the paper: "cleans the raw output by removing malformed entries and
reformats the dataset from pipe-separated text to CSV for compatibility
with Python-based analysis libraries", plus the "light preprocessing
step ... unit conversions (e.g., node counts expressed as 'K' for
thousands) or formatting adjustments (e.g., converting raw seconds to
minutes for readability)".

Output is two typed CSVs per input: one with job rows, one with step
rows.  All Slurm text quirks are resolved here; downstream analytics see
plain integers/floats/strings.

Each CSV also gets a binary columnar ``.npf`` twin holding the *parsed*
shape of the CSV (written from a re-read, so ``read_npf(twin) ==
read_csv(csv)`` exactly).  The twin's header records the CSV's SHA-256;
:func:`repro.store.read_table_fast` serves the twin while that hash
still matches, which is what lets every downstream chart skip CSV
parsing and dtype inference on the hot path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro._util.errors import DataError
from repro.frame import Frame, read_csv, write_csv, write_npf
from repro.slurm.parse import is_step_jobid, record_from_row
from repro.store import Artifact, default_hash_cache

__all__ = ["CurateStage", "CurateReport", "JOB_CSV_COLUMNS",
           "STEP_CSV_COLUMNS", "curate_records"]

#: Curated job-row CSV schema (normalized units: epochs, seconds, KiB).
JOB_CSV_COLUMNS = [
    "JobID", "User", "Account", "Partition", "QOS", "JobName", "State",
    "ExitCode", "Reason", "SubmitTime", "Eligible", "StartTime", "EndTime",
    "Elapsed", "ElapsedMin", "Timelimit", "TimelimitMin", "WaitS",
    "NNodes", "NCPUs", "NTasks", "ReqMem", "ReqGRES", "NodeList",
    "Priority", "Backfill", "Dependency", "ArrayJobID", "Restarts",
    "ConsumedEnergy", "TotalCPU", "MaxRSS", "AveRSS", "VMSize",
    "AveDiskRead", "AveDiskWrite", "MaxDiskRead", "MaxDiskWrite",
    "WorkDir", "Flags", "Comment",
]

#: Curated step-row CSV schema.
STEP_CSV_COLUMNS = [
    "StepID", "ParentJobID", "JobName", "State", "ExitCode",
    "StartTime", "EndTime", "Elapsed", "NNodes", "NTasks", "Layout",
    "AveCPU", "MaxRSS", "AveDiskRead", "AveDiskWrite",
]


@dataclass
class CurateReport:
    """Counters from one curation run (paper: malformed < 0.002%)."""

    input_rows: int = 0
    job_rows: int = 0
    step_rows: int = 0
    malformed: int = 0

    @property
    def malformed_fraction(self) -> float:
        return self.malformed / self.input_rows if self.input_rows else 0.0


class CurateStage:
    """Turn one sacct pipe file into jobs.csv + steps.csv."""

    def __init__(self, out_dir: str, obs=None) -> None:
        self.out_dir = out_dir
        #: optional repro.obs.RunContext — both output CSVs are
        #: registered in the provenance ledger, fingerprinted, with the
        #: source pipe file as their declared input
        self.obs = obs

    def run(self, pipe_path: str | os.PathLike, tag: str | None = None
            ) -> tuple[Artifact, Artifact, CurateReport]:
        """Curate ``pipe_path``; returns (jobs, steps, report).

        The first two elements are typed CSV :class:`Artifact` handles
        (``os.PathLike`` — existing path consumers are unaffected);
        their ``.npf`` twins land next to them."""
        tag = tag or os.path.splitext(os.path.basename(pipe_path))[0]
        report = CurateReport()
        with open(pipe_path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise DataError(f"empty sacct file: {pipe_path}")
        names = lines[0].split("|")
        job_rows: list[dict] = []
        step_rows: list[dict] = []
        for line in lines[1:]:
            if not line:
                continue
            report.input_rows += 1
            cells = line.split("|")
            try:
                typed = record_from_row(names, cells)
            except DataError:
                report.malformed += 1
                continue
            if is_step_jobid(str(typed.get("JobID", ""))):
                step_rows.append(self._step_row(typed))
                report.step_rows += 1
            else:
                job_rows.append(self._job_row(typed))
                report.job_rows += 1
        jobs = Artifact.in_dir(self.out_dir, f"{tag}-jobs", "csv",
                               schema=JOB_CSV_COLUMNS)
        steps = Artifact.in_dir(self.out_dir, f"{tag}-steps", "csv",
                                schema=STEP_CSV_COLUMNS)
        write_csv(Frame.from_records(job_rows, columns=JOB_CSV_COLUMNS),
                  jobs.path)
        write_csv(Frame.from_records(step_rows, columns=STEP_CSV_COLUMNS),
                  steps.path)
        for art in (jobs, steps):
            self._write_twin(art)
            if self.obs is not None:
                self.obs.record_artifact(art.path, producer=f"curate:{tag}",
                                         inputs=(pipe_path,))
                self.obs.record_artifact(art.with_fmt("npf").path,
                                         producer=f"curate:{tag}",
                                         inputs=(art.path,))
        return jobs, steps, report

    @staticmethod
    def _write_twin(csv_art: Artifact) -> None:
        """The CSV's ``.npf`` twin: the *parse result* of the CSV (one
        re-read here buys zero parses everywhere downstream), tied to
        the exact CSV bytes by content hash."""
        twin = csv_art.with_fmt("npf")
        write_npf(read_csv(csv_art.path), twin.path,
                  meta={"source": os.path.basename(csv_art.path),
                        "source_sha256":
                            default_hash_cache().sha256(csv_art.path),
                        "infer": True})

    @staticmethod
    def _job_row(typed: dict) -> dict:
        start = typed["StartTime"]
        eligible = typed["Eligible"]
        end = typed["EndTime"]
        if start >= 0:
            wait = max(0, start - max(0, eligible))
        elif end >= 0 and eligible >= 0:
            wait = max(0, end - eligible)   # cancelled while pending
        else:
            wait = 0
        row = {c: typed.get(c, "") for c in JOB_CSV_COLUMNS}
        row.update({
            "ElapsedMin": round(typed["Elapsed"] / 60.0, 2),
            "TimelimitMin": round(typed["Timelimit"] / 60.0, 2),
            "WaitS": wait,
            # normalize memory sizes to KiB integers
            "MaxRSS": typed.get("MaxRSS", 0) // 1024,
            "AveRSS": typed.get("AveRSS", 0) // 1024,
            "VMSize": typed.get("VMSize", 0) // 1024,
        })
        # derive Backfill from Flags when the explicit column is absent
        if "Backfill" not in typed:
            row["Backfill"] = int("SchedBackfill" in str(typed.get("Flags", "")))
        return row

    @staticmethod
    def _step_row(typed: dict) -> dict:
        step_id = str(typed["JobID"])
        parent = step_id.split(".", 1)[0]
        row = {c: typed.get(c, "") for c in STEP_CSV_COLUMNS}
        row.update({
            "StepID": step_id,
            "ParentJobID": int(parent) if parent.isdigit() else parent,
            "MaxRSS": typed.get("MaxRSS", 0) // 1024,
        })
        return row


def curate_records(records) -> tuple[list[dict], list[dict]]:
    """Curate :class:`~repro.slurm.records.JobRecord` objects in memory.

    The sharded pipeline never lands a whole month's sacct pipe text on
    disk at once; this runs each record through the *actual* emit →
    parse → curate machinery (``SacctEmitter`` row formatting,
    :func:`record_from_row` typing, the :class:`CurateStage` row
    builders) so the result is field-for-field what
    :meth:`CurateStage.run` produces from the equivalent pipe file —
    minus only the malformed-row injection, which is an emit-stage
    fault model, not a property of the jobs.

    Returns ``(job_rows, step_rows)`` dicts keyed by the curated CSV
    schemas.
    """
    from repro.slurm.emit import SacctEmitter

    emitter = SacctEmitter()
    names = emitter.names
    job_rows: list[dict] = []
    step_rows: list[dict] = []
    for job in records:
        typed = record_from_row(names, emitter.job_row(job).split("|"))
        job_rows.append(CurateStage._job_row(typed))
        for step in job.steps:
            typed = record_from_row(names,
                                    emitter.step_row(step).split("|"))
            step_rows.append(CurateStage._step_row(typed))
    return job_rows, step_rows
