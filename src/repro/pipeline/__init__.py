"""The static data-analysis subworkflow's data stages.

Section 3.1's first two blue boxes:

- **Obtain data** (:mod:`repro.pipeline.obtain`): parameterized queries
  against the accounting database, month or year granularity, an on-disk
  cache that is reused when present, and concurrent fetching of many
  windows (the paper uses GNU Parallel; here a worker pool).
- **Curate data** (:mod:`repro.pipeline.curate`): drop malformed records
  (counting them against the paper's <0.002% figure), normalize units
  (K-suffixed counts, durations to seconds/minutes), and reformat from
  pipe-separated text to typed CSV, split into job rows and step rows.
"""

from repro.pipeline.obtain import ObtainConfig, ObtainStage, ObtainReport, window_seed
from repro.pipeline.curate import CurateStage, CurateReport, JOB_CSV_COLUMNS, STEP_CSV_COLUMNS

__all__ = [
    "ObtainConfig",
    "ObtainStage",
    "ObtainReport",
    "window_seed",
    "CurateStage",
    "CurateReport",
    "JOB_CSV_COLUMNS",
    "STEP_CSV_COLUMNS",
]
