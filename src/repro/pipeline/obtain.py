"""The Obtain stage: parameterized, cached, concurrent data pulls.

Mirrors the paper's description: "users can define the desired date range
(e.g., spanning multiple years), choose the data granularity (yearly or
monthly), and indicate whether previously cached data should be used.  If
cached data is unavailable, the system automatically fetches fresh
records ... For large-scale retrievals across many months or years, GNU
Parallel is employed to execute multiple database queries concurrently."

Here the database is an :class:`~repro.slurm.db.AccountingDB` and the
GNU-Parallel role is played by a thread pool (the queries release the GIL
while writing files, and correctness does not depend on true
parallelism — only the concurrency structure is reproduced).
"""

from __future__ import annotations

import os
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro._util.errors import ConfigError
from repro._util.timefmt import iter_months, month_bounds
from repro.slurm.db import AccountingDB
from repro.slurm.emit import DEFAULT_MALFORMED_RATE
from repro.store import Artifact

__all__ = ["ObtainConfig", "ObtainStage", "ObtainReport", "window_seed"]


def window_seed(name: str) -> int:
    """Process-stable RNG seed word for a window name.

    Built-in ``hash()`` on strings is salted per interpreter
    (``PYTHONHASHSEED``), which would make "cached vs fresh" runs
    synthesize different data across invocations; crc32 is a stable
    digest of the name alone.
    """
    return zlib.crc32(name.encode("utf-8"))


@dataclass(frozen=True)
class ObtainConfig:
    """Parameters of one Obtain run (the workflow's date_spec/dates/cache
    arguments)."""

    start_month: str
    end_month: str
    granularity: str = "monthly"          # "monthly" | "yearly"
    cache_dir: str = "cache"
    use_cache: bool = True
    workers: int = 4
    malformed_rate: float = DEFAULT_MALFORMED_RATE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.granularity not in ("monthly", "yearly"):
            raise ConfigError(f"bad granularity {self.granularity!r}")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        # validate months eagerly
        list(iter_months(self.start_month, self.end_month))

    def windows(self) -> list[tuple[str, list[str]]]:
        """``(window_name, months)`` pairs at the configured granularity."""
        months = list(iter_months(self.start_month, self.end_month))
        if self.granularity == "monthly":
            return [(m, [m]) for m in months]
        by_year: dict[str, list[str]] = {}
        for m in months:
            by_year.setdefault(m[:4], []).append(m)
        return sorted(by_year.items())


@dataclass
class ObtainReport:
    """What an Obtain run did.

    ``files`` holds typed :class:`~repro.store.Artifact` handles
    (``os.PathLike``, so existing path consumers keep working)."""

    files: list[Artifact] = field(default_factory=list)
    fetched: list[str] = field(default_factory=list)   # window names pulled
    cached: list[str] = field(default_factory=list)    # served from cache
    rows: int = 0


class ObtainStage:
    """Pull sacct text for each window of a date range, with caching."""

    def __init__(self, db: AccountingDB, config: ObtainConfig,
                 obs=None) -> None:
        self.db = db
        self.config = config
        #: optional repro.obs.RunContext — every produced (or cache-hit)
        #: sacct window file is registered in the provenance ledger with
        #: a content fingerprint
        self.obs = obs

    def _window_artifact(self, name: str) -> Artifact:
        return Artifact(name=f"{self.db.cluster}-{name}", fmt="pipe",
                        path=os.path.join(
                            self.config.cache_dir,
                            f"{self.db.cluster}-{name}.txt"))

    def _window_path(self, name: str) -> str:
        return self._window_artifact(name).path

    def _fetch(self, name: str, months: list[str]) -> tuple[str, int]:
        start, _ = month_bounds(months[0])
        _, end = month_bounds(months[-1])
        path = self._window_path(name)
        rng = np.random.default_rng(
            [self.config.seed, window_seed(name)])
        rows = self.db.dump_sacct(path, start, end,
                                  malformed_rate=self.config.malformed_rate,
                                  rng=rng)
        return path, rows

    def run(self) -> ObtainReport:
        """Fetch (or reuse) every window; windows fetch concurrently."""
        report = ObtainReport()
        todo: list[tuple[str, list[str]]] = []
        for name, months in self.config.windows():
            art = self._window_artifact(name)
            if self.config.use_cache and art.exists():
                report.cached.append(name)
                report.files.append(art)
                self._record_provenance(name, art.path, cached=True)
            else:
                todo.append((name, months))
        if todo:
            with ThreadPoolExecutor(max_workers=self.config.workers) as pool:
                futures = {pool.submit(self._fetch, name, months): name
                           for name, months in todo}
                results = {}
                for fut, name in futures.items():
                    path, rows = fut.result()
                    results[name] = (path, rows)
            for name, _ in todo:   # keep window order deterministic
                path, rows = results[name]
                report.fetched.append(name)
                report.files.append(self._window_artifact(name))
                report.rows += rows
                self._record_provenance(name, path, cached=False)
        report.files.sort(key=os.fspath)
        return report

    def _record_provenance(self, name: str, path: str,
                           cached: bool) -> None:
        """Register a window file in the run's provenance ledger.  A
        cache hit is re-fingerprinted: the ledger states what this run
        actually consumed, whoever produced the bytes."""
        if self.obs is None:
            return
        producer = f"obtain:{name}" + (":cached" if cached else "")
        self.obs.record_artifact(path, producer=producer)
