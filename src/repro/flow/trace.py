"""Execution traces and concurrency measurement.

The Figure 2 reproduction: the workflow is written as a linear task
list, and the trace proves the engine extracted the diagram's available
concurrency (tasks in the same horizontal row ran at the same time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "ExecutionTrace", "TraceRecorder",
           "concurrency_profile"]


@dataclass
class TraceEvent:
    """One task execution, in seconds relative to run start."""

    task: str
    start_s: float
    end_s: float
    ok: bool = True

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class ExecutionTrace:
    events: list[TraceEvent] = field(default_factory=list)

    def overlapping(self, a: str, b: str) -> bool:
        """Did tasks ``a`` and ``b`` run concurrently at any instant?"""
        ea = self.event(a)
        eb = self.event(b)
        return ea.start_s < eb.end_s and eb.start_s < ea.end_s

    def event(self, task: str) -> TraceEvent:
        for e in self.events:
            if e.task == task:
                return e
        raise KeyError(f"no trace event for task {task!r}")

    @property
    def makespan_s(self) -> float:
        return max((e.end_s for e in self.events), default=0.0)

    @property
    def busy_s(self) -> float:
        return sum(e.duration_s for e in self.events)


class TraceRecorder:
    """Event-bus subscriber that reconstructs an :class:`ExecutionTrace`.

    The engine no longer appends trace events directly: it emits
    ``task_finished`` lifecycle events on its bus (see ``repro.obs``)
    and this subscriber keeps :attr:`FlowReport.trace` byte-compatible
    for existing consumers.  A ``"cached"`` status is a success — the
    task's outputs are present and fresh (the old direct append
    recorded cached tasks as failures).
    """

    def __init__(self, trace: ExecutionTrace) -> None:
        self.trace = trace

    def __call__(self, event) -> None:
        if event.kind != "task_finished":
            return
        a = event.attrs
        self.trace.events.append(TraceEvent(
            task=event.name, start_s=a["start_s"], end_s=a["end_s"],
            ok=a["status"] in ("ok", "cached")))


def concurrency_profile(trace: ExecutionTrace) -> tuple[int, float]:
    """(peak concurrency, average concurrency) of a trace."""
    points: list[tuple[float, int]] = []
    for e in trace.events:
        points.append((e.start_s, 1))
        points.append((e.end_s, -1))
    points.sort()
    level = peak = 0
    for _, delta in points:
        level += delta
        peak = max(peak, level)
    makespan = trace.makespan_s
    avg = trace.busy_s / makespan if makespan > 0 else 0.0
    return peak, avg
