"""A Swift/T-style dataflow engine.

Section 3.3: the workflow is "an apparently linear list of the functional
subcomponents with input and output file references; however, Swift/T
automatically determines the data dependencies and produces/executes the
dataflow diagram" — with ``-n N`` setting the physical concurrency.

:class:`FlowEngine` reproduces that model in-process:

- tasks declare input/output *file references*,
- edges are inferred (producer of a path → consumer of that path),
- the resulting DAG (networkx) is validated (acyclic, single writer per
  path) and executed on a worker pool of size ``workers``,
- an execution trace records start/end per task, from which the achieved
  concurrency of Figure 2's diagram is measured.
"""

from repro.flow.engine import FlowEngine, Task, TaskResult, FlowReport
from repro.flow.trace import ExecutionTrace, TraceRecorder, concurrency_profile

__all__ = [
    "FlowEngine",
    "Task",
    "TaskResult",
    "FlowReport",
    "ExecutionTrace",
    "TraceRecorder",
    "concurrency_profile",
]
