"""The dataflow engine core."""

from __future__ import annotations

import os
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Sequence

import networkx as nx

from repro._util.errors import WorkflowError
from repro.flow.trace import ExecutionTrace, TraceRecorder
from repro.obs import EventBus, RunContext

__all__ = ["Task", "TaskResult", "FlowReport", "FlowEngine"]


@dataclass
class Task:
    """One unit of work with file-reference dataflow."""

    name: str
    fn: Callable[[], object]
    inputs: tuple[str, ...] = ()
    outputs: tuple[str, ...] = ()
    #: explicit extra dependencies (task names), for control-only edges
    after: tuple[str, ...] = ()
    #: re-run attempts on failure (transient-fault tolerance)
    retries: int = 0
    #: seconds slept before the first re-run attempt, doubling per
    #: subsequent attempt (0 = immediate retry, the historical default)
    retry_backoff_s: float = 0.0
    #: skip execution when every output already exists and is newer than
    #: every input (incremental re-runs, like the paper's data cache)
    cache: bool = False

    def is_fresh(self) -> bool:
        """True when cached outputs make execution unnecessary.

        A missing declared *input* forces re-execution just like a
        missing output: outputs on disk cannot be trusted to reflect an
        input the task says it reads but that no longer exists.
        """
        if not self.cache or not self.outputs:
            return False
        try:
            out_times = [os.path.getmtime(p) for p in self.outputs]
            in_times = [os.path.getmtime(p) for p in self.inputs]
        except OSError:
            return False
        newest_in = max(in_times, default=float("-inf"))
        return min(out_times) >= newest_in


@dataclass
class TaskResult:
    """Outcome of one task.

    ``status`` is one of:

    - ``"ok"`` — the task function ran and returned
    - ``"cached"`` — fresh outputs let the run be skipped
      (:meth:`Task.is_fresh`); counts as success for
      :attr:`FlowReport.ok` and is listed by :meth:`FlowReport.cached`
    - ``"failed"`` — the function raised on every attempt
    - ``"skipped"`` — never executed (upstream failure, fail-fast
      cancellation, or the task never became ready); ``error`` says why
    """

    name: str
    status: str                   # "ok" | "cached" | "failed" | "skipped"
    duration_s: float = 0.0
    value: object = None
    error: str = ""
    #: times the task function was invoked (0 for cached/skipped; > 1
    #: means retries happened — visible in the run manifest)
    attempts: int = 0


@dataclass
class FlowReport:
    """Outcome of one engine run."""

    results: dict[str, TaskResult] = field(default_factory=dict)
    trace: ExecutionTrace = field(default_factory=ExecutionTrace)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.status in ("ok", "cached")
                   for r in self.results.values())

    def cached(self) -> list[TaskResult]:
        return [r for r in self.results.values() if r.status == "cached"]

    def failed(self) -> list[TaskResult]:
        return [r for r in self.results.values() if r.status == "failed"]


def _norm(path: str | os.PathLike) -> str:
    # accepts plain strings and typed handles (repro.store.Artifact or
    # anything os.PathLike); the engine's dataflow inference runs on
    # the normalized path either way
    return os.path.normpath(os.fspath(path))


class FlowEngine:
    """Build a task list, infer the DAG, execute concurrently.

    Example::

        eng = FlowEngine(workers=4)
        eng.task("obtain", fetch, outputs=["cache/jan.txt"])
        eng.task("curate", clean, inputs=["cache/jan.txt"],
                 outputs=["data/jan.csv"])
        report = eng.run()
    """

    def __init__(self, workers: int = 4, fail_fast: bool = False,
                 context: RunContext | None = None,
                 store=None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if workers < 1:
            raise WorkflowError("workers must be >= 1")
        self.workers = workers
        self.fail_fast = fail_fast
        #: observability context; when absent the engine runs on a
        #: private bus whose only subscriber is the trace recorder
        self.context = context
        #: optional repro.store.ArtifactStore: with one attached,
        #: cached-task freshness is verified by content hash against
        #: the store's persisted stamps (mtime ordering alone cannot
        #: catch a rewritten-in-place input), and completed cached
        #: tasks are re-stamped
        self.store = store
        self._sleep = sleep
        self._tasks: dict[str, Task] = {}

    # -- construction -----------------------------------------------------------

    def task(self, name: str, fn: Callable[[], object], *,
             inputs: Sequence[str | os.PathLike] = (),
             outputs: Sequence[str | os.PathLike] = (),
             after: Sequence[str] = (), retries: int = 0,
             retry_backoff_s: float = 0.0, cache: bool = False) -> Task:
        """Register a task; returns it for reference.

        ``inputs``/``outputs`` accept path strings or artifact handles
        (any ``os.PathLike``, e.g. :class:`repro.store.Artifact`)."""
        if name in self._tasks:
            raise WorkflowError(f"duplicate task name {name!r}")
        if retries < 0:
            raise WorkflowError(f"task {name!r}: negative retries")
        if retry_backoff_s < 0:
            raise WorkflowError(f"task {name!r}: negative retry backoff")
        t = Task(name=name, fn=fn,
                 inputs=tuple(_norm(p) for p in inputs),
                 outputs=tuple(_norm(p) for p in outputs),
                 after=tuple(after), retries=retries,
                 retry_backoff_s=retry_backoff_s, cache=cache)
        self._tasks[name] = t
        return t

    @property
    def tasks(self) -> dict[str, Task]:
        """Registered tasks by name (read-only view by convention)."""
        return self._tasks

    def graph(self) -> nx.DiGraph:
        """The inferred dependency DAG (validated)."""
        g = nx.DiGraph()
        producer: dict[str, str] = {}
        for t in self._tasks.values():
            g.add_node(t.name)
            for out in t.outputs:
                other = producer.get(out)
                if other is not None:
                    raise WorkflowError(
                        f"both {other!r} and {t.name!r} produce {out}")
                producer[out] = t.name
        for t in self._tasks.values():
            for inp in t.inputs:
                src = producer.get(inp)
                if src is not None and src != t.name:
                    g.add_edge(src, t.name)
            for dep in t.after:
                if dep not in self._tasks:
                    raise WorkflowError(
                        f"{t.name!r} depends on unknown task {dep!r}")
                g.add_edge(dep, t.name)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowError(f"dependency cycle: {cycle}")
        return g

    # -- freshness ---------------------------------------------------------------

    def _is_fresh(self, task: Task) -> bool:
        """Cached-task freshness: content hashes against the store's
        stamp when one is attached and covers this task; the historical
        mtime comparison otherwise."""
        if not task.cache or not task.outputs:
            return False
        if self.store is not None:
            verdict = self.store.task_is_fresh(task.name, task.inputs,
                                               task.outputs)
            if verdict is not None:
                return verdict
        return task.is_fresh()

    def _stamp(self, task: Task) -> None:
        """Record the content hashes a just-completed cached task read
        and wrote, so the next run's freshness check is hash-verified."""
        if self.store is None or not task.cache or not task.outputs:
            return
        try:
            self.store.record_stamp(task.name, task.inputs, task.outputs)
        except OSError:
            pass        # an unstampable task just re-runs next time

    # -- execution ----------------------------------------------------------------

    def run(self) -> FlowReport:
        """Execute the DAG on the worker pool; returns the full report."""
        g = self.graph()
        report = FlowReport()
        # lifecycle events flow through the run context's bus when one
        # is attached, else a private bus; either way the legacy
        # ExecutionTrace is reconstructed by a TraceRecorder subscriber
        bus = self.context.bus if self.context is not None else EventBus()
        recorder = bus.subscribe(TraceRecorder(report.trace))
        try:
            return self._run(g, report, bus)
        finally:
            bus.unsubscribe(recorder)

    def _run(self, g: nx.DiGraph, report: FlowReport,
             bus: EventBus) -> FlowReport:
        t_origin = time.perf_counter()
        bus.emit("run_started", "flow", tasks=len(self._tasks),
                 workers=self.workers)
        indegree = {n: g.in_degree(n) for n in g.nodes}
        ready = [n for n, d in indegree.items() if d == 0]
        # deterministic dispatch order: registration order among ready
        order = {name: i for i, name in enumerate(self._tasks)}
        ready.sort(key=order.__getitem__)
        lock = threading.Lock()
        running: dict[Future, str] = {}
        cancelled: set[str] = set()
        failed_any = False

        def finish(name: str, status: str, value, err: str,
                   t0: float, t1: float, attempts: int) -> None:
            """Record one terminal outcome (result + lifecycle event)."""
            report.results[name] = TaskResult(
                name=name, status=status, duration_s=t1 - t0,
                value=value, error=err, attempts=attempts)
            bus.emit("task_finished", name, status=status,
                     start_s=t0 - t_origin, end_s=t1 - t_origin,
                     attempts=attempts)

        def launch(pool: ThreadPoolExecutor, name: str) -> None:
            task = self._tasks[name]
            bus.emit("task_ready", name)

            def call():
                t0 = time.perf_counter()
                if self._is_fresh(task):
                    return ("cached", None, "", t0, time.perf_counter(), 0)
                bus.emit("task_started", name)
                last_tb = ""
                attempts = 0
                for attempt in range(task.retries + 1):
                    attempts += 1
                    try:
                        value = task.fn()
                        self._stamp(task)
                        return ("ok", value, "", t0,
                                time.perf_counter(), attempts)
                    except Exception:
                        last_tb = traceback.format_exc()
                    if attempt < task.retries:
                        bus.emit("task_retried", name, attempt=attempts)
                        if task.retry_backoff_s > 0:
                            # deterministic exponential backoff:
                            # backoff, 2*backoff, 4*backoff, ...
                            self._sleep(task.retry_backoff_s
                                        * (2 ** attempt))
                return ("failed", None, last_tb, t0,
                        time.perf_counter(), attempts)
            running[pool.submit(call)] = name

        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            for name in ready:
                launch(pool, name)
            while running:
                done, _ = wait(list(running), return_when=FIRST_COMPLETED)
                newly_ready: list[str] = []
                for fut in done:
                    name = running.pop(fut)
                    status, value, err, t0, t1, attempts = fut.result()
                    with lock:
                        finish(name, status, value, err, t0, t1, attempts)
                    if status == "failed":
                        failed_any = True
                        for desc in nx.descendants(g, name):
                            cancelled.add(desc)
                        if self.fail_fast:
                            for f in running:
                                f.cancel()
                    for succ in g.successors(name):
                        indegree[succ] -= 1
                        if indegree[succ] == 0:
                            newly_ready.append(succ)
                if failed_any and self.fail_fast:
                    break
                # drain via an explicit worklist, re-sorting whenever a
                # skip releases successors mid-drain: every dispatch
                # (launch or skip) happens in registration order among
                # the ready tasks known at that moment — appending to
                # the list being iterated would dispatch transitively
                # skipped successors in arbitrary discovery order
                worklist = sorted(newly_ready, key=order.__getitem__)
                while worklist:
                    name = worklist.pop(0)
                    if name in cancelled:
                        report.results[name] = TaskResult(
                            name=name, status="skipped",
                            error="upstream failure")
                        bus.emit("task_skipped", name,
                                 reason="upstream failure")
                        # propagate skip transitively
                        released = False
                        for succ in g.successors(name):
                            indegree[succ] -= 1
                            if indegree[succ] == 0:
                                worklist.append(succ)
                                released = True
                        if released:
                            worklist.sort(key=order.__getitem__)
                        continue
                    launch(pool, name)

        # a fail-fast break leaves futures behind: pool shutdown has
        # waited for the ones already executing, so record their real
        # outcome rather than pretending they never became ready
        for fut, name in running.items():
            if fut.cancelled():
                report.results[name] = TaskResult(
                    name=name, status="skipped",
                    error="cancelled (fail_fast)")
                bus.emit("task_skipped", name,
                         reason="cancelled (fail_fast)")
                continue
            status, value, err, t0, t1, attempts = fut.result()
            finish(name, status, value, err, t0, t1, attempts)
        for name in self._tasks:
            if name not in report.results:
                report.results[name] = TaskResult(
                    name=name, status="skipped",
                    error="never became ready")
                bus.emit("task_skipped", name,
                         reason="never became ready")
        report.wall_s = time.perf_counter() - t_origin
        bus.emit("run_finished", "flow", ok=report.ok,
                 wall_s=round(report.wall_s, 6),
                 tasks=len(report.results))
        return report

    def run_or_raise(self) -> FlowReport:
        """:meth:`run`, raising on any task failure with its traceback."""
        report = self.run()
        bad = report.failed()
        if bad:
            raise WorkflowError(
                f"{len(bad)} task(s) failed; first: {bad[0].name}\n"
                f"{bad[0].error}")
        return report
