"""``python -m repro.scenarios`` — the ``repro-scenario`` CLI."""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
