"""Scenario specs: declarative what-if descriptions of operations.

A :class:`Scenario` names a system, a month window, a workload scale,
and an injection stream (:class:`~repro.sched.injections.
ScenarioInjections` with times *relative to the first month's start*),
plus — for federated what-ifs — a :class:`FederationSpec` describing
how one incoming stream routes across two systems.  Scenarios load
from JSON or TOML files (``load_scenario``) and round-trip through
JSON-safe dicts (``scenario_to_spec`` / ``scenario_from_spec``), so
the same spec drives the CLI, policylab sweeps, fabric campaigns, and
tests.

The built-in registry (:func:`builtin_scenarios`) is the zoo: the
fault / power-cap / elastic / federated axes ROADMAP item 4 calls the
untouched scenario dimension of the paper.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field, replace

from repro._util.errors import ConfigError, DataError
from repro.sched.injections import (ElasticWindow, NodeFault, PowerCap,
                                    ScenarioInjections)

__all__ = ["Scenario", "FederationSpec", "builtin_scenarios",
           "load_scenario", "scenario_to_spec", "scenario_from_spec"]

_DAY = 86400

#: scenario spec schema version (files carry it; bump on layout change)
SCENARIO_SPEC_VERSION = 1


@dataclass(frozen=True)
class FederationSpec:
    """How a federated scenario routes one stream across two systems."""

    #: (primary, secondary); the stream is generated against the
    #: primary's workload profile
    systems: tuple[str, str] = ("frontier", "andes")
    #: "size-split" (small jobs offload to the secondary) or
    #: "round-robin" (alternate submissions)
    routing: str = "size-split"
    #: size-split threshold: jobs requesting <= this many nodes route
    #: to the secondary system
    split_nodes: int = 4
    #: which system the scenario's injections hit (None = the primary)
    inject: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "systems", tuple(self.systems))
        if len(self.systems) != 2 or len(set(self.systems)) != 2:
            raise ConfigError("federation needs exactly two distinct "
                              "systems")
        if self.routing not in ("size-split", "round-robin"):
            raise ConfigError(
                f"routing must be 'size-split' or 'round-robin', "
                f"got {self.routing!r}")
        if self.split_nodes < 1:
            raise ConfigError("split_nodes must be >= 1")
        if self.inject is not None and self.inject not in self.systems:
            raise ConfigError(
                f"inject target {self.inject!r} is not one of "
                f"{self.systems}")


@dataclass(frozen=True)
class Scenario:
    """One named, fully-declarative what-if experiment."""

    name: str
    description: str = ""
    #: "single" (one system, full analytics stack) or "federated"
    #: (two-system co-scheduling feeding analytics.federate)
    kind: str = "single"
    system: str = "frontier"
    months: tuple[str, ...] = ("2024-03",)
    seed: int = 0
    rate_scale: float = 0.05
    #: injection times are seconds relative to the first month's start;
    #: the runner shifts them to absolute epochs
    injections: ScenarioInjections = field(
        default_factory=ScenarioInjections)
    federation: FederationSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario needs a name")
        object.__setattr__(self, "months", tuple(self.months))
        if not self.months:
            raise ConfigError("scenario needs at least one month")
        if list(self.months) != sorted(self.months):
            raise ConfigError("scenario months must be sorted")
        if self.kind not in ("single", "federated"):
            raise ConfigError(
                f"kind must be 'single' or 'federated', got {self.kind!r}")
        if not 0 < self.rate_scale <= 1.0:
            raise ConfigError(
                f"rate_scale must be in (0, 1], got {self.rate_scale}")
        if self.kind == "federated" and self.federation is None:
            object.__setattr__(self, "federation", FederationSpec())
        if self.kind == "single" and self.federation is not None:
            raise ConfigError("a single-system scenario carries no "
                              "federation spec")


# -- spec round-trips ---------------------------------------------------------------

def scenario_to_spec(scn: Scenario) -> dict:
    """Flatten a scenario to a JSON-safe dict."""
    spec = {
        "version": SCENARIO_SPEC_VERSION,
        "name": scn.name,
        "description": scn.description,
        "kind": scn.kind,
        "system": scn.system,
        "months": list(scn.months),
        "seed": scn.seed,
        "rate_scale": scn.rate_scale,
        "injections": scn.injections.to_spec(),
    }
    if scn.federation is not None:
        spec["federation"] = {
            "systems": list(scn.federation.systems),
            "routing": scn.federation.routing,
            "split_nodes": scn.federation.split_nodes,
            "inject": scn.federation.inject,
        }
    return spec


def scenario_from_spec(spec: dict) -> Scenario:
    """Rebuild the scenario a spec dict describes (validates fully)."""
    if not isinstance(spec, dict):
        raise ConfigError(
            f"scenario spec must be a mapping, got {type(spec).__name__}")
    spec = dict(spec)
    version = spec.pop("version", SCENARIO_SPEC_VERSION)
    if version != SCENARIO_SPEC_VERSION:
        raise DataError(f"scenario spec version {version} != "
                        f"{SCENARIO_SPEC_VERSION}")
    known = {"name", "description", "kind", "system", "months", "seed",
             "rate_scale", "injections", "federation"}
    unknown = set(spec) - known
    if unknown:
        raise ConfigError(f"unknown scenario spec keys: {sorted(unknown)}")
    if "injections" in spec:
        spec["injections"] = ScenarioInjections.from_spec(
            spec["injections"])
    fed = spec.get("federation")
    if fed is not None:
        fed = dict(fed)
        fed["systems"] = tuple(fed.get("systems", ("frontier", "andes")))
        spec["federation"] = FederationSpec(**fed)
    if "months" in spec:
        spec["months"] = tuple(spec["months"])
    return Scenario(**spec)


def load_scenario(path: str) -> Scenario:
    """Load a scenario spec file (``.json``, or ``.toml`` on 3.11+)."""
    if path.endswith(".toml"):
        if sys.version_info < (3, 11):
            raise ConfigError(
                "TOML scenario files need python >= 3.11 (tomllib); "
                "use the JSON form on this interpreter")
        import tomllib
        with open(path, "rb") as fh:
            spec = tomllib.load(fh)
    else:
        with open(path, encoding="utf-8") as fh:
            spec = json.load(fh)
    return scenario_from_spec(spec)


# -- the zoo ------------------------------------------------------------------------

def builtin_scenarios() -> dict[str, Scenario]:
    """The built-in scenario registry, keyed by name."""
    zoo = [
        Scenario(
            name="baseline",
            description="no injections: the control arm every other "
                        "scenario is compared against"),
        Scenario(
            name="node-storm",
            description="two node-fault waves (requeue policy) plus a "
                        "terminal kill fault late in the month",
            injections=ScenarioInjections(faults=(
                NodeFault(t=5 * _DAY, nodes=128, duration_s=6 * 3600),
                NodeFault(t=12 * _DAY, nodes=256, duration_s=12 * 3600),
                NodeFault(t=21 * _DAY, nodes=64, duration_s=3 * 3600,
                          policy="kill"),
            ))),
        Scenario(
            name="power-brownout",
            description="facility power caps: a deep two-day 60% window "
                        "and a shallower 80% follow-up",
            injections=ScenarioInjections(power_caps=(
                PowerCap(start=8 * _DAY, end=10 * _DAY, frac=0.6),
                PowerCap(start=20 * _DAY, end=21 * _DAY, frac=0.8),
            ))),
        Scenario(
            name="elastic-burst",
            description="malleable mtask/ai_train jobs surrender 40% of "
                        "their nodes during two daily-peak windows",
            injections=ScenarioInjections(elastic=(
                ElasticWindow(start=6 * _DAY, end=6 * _DAY + 8 * 3600,
                              frac=0.4),
                ElasticWindow(start=13 * _DAY, end=13 * _DAY + 8 * 3600,
                              frac=0.4),
            ))),
        Scenario(
            name="mixed-ops",
            description="the full zoo in one month: a fault wave, a "
                        "power cap, and an elastic relief window",
            injections=ScenarioInjections(
                faults=(NodeFault(t=4 * _DAY, nodes=192,
                                  duration_s=8 * 3600),),
                power_caps=(PowerCap(start=10 * _DAY, end=12 * _DAY,
                                     frac=0.7),),
                elastic=(ElasticWindow(start=18 * _DAY,
                                       end=18 * _DAY + 6 * 3600,
                                       frac=0.5),))),
        Scenario(
            name="frontier-andes",
            kind="federated",
            description="co-scheduling what-if: small jobs offload from "
                        "Frontier to Andes; deltas feed "
                        "analytics.federate (Figures 7-9 axis)",
            federation=FederationSpec()),
    ]
    return {s.name: s for s in zoo}
