"""Scenario execution: sweeps, full workflow runs, federation, replay.

Four entry points, all driven by the same :class:`Scenario` spec:

- :func:`sweep_scenario` — policylab: the scenario's injection stream
  attached to every policy variant, evaluated over one fixed workload
  (the what-if table the LLM-advisor layer consumes);
- :func:`run_scenario` — the full Figure-2 workflow with the scenario
  riding on :class:`~repro.sched.simulator.SimConfig`, producing the
  complete Figures 3-9 analytics stack (single) or the two-system
  federated comparison;
- :func:`calibrate_trace` — a public SWF trace fitted to a runnable
  workload-profile spec (real-trace replay);
- :func:`run_scenario_payload` — the fabric runner body (kind
  ``"scenario"``), so durable campaigns can sweep hundreds of
  scenarios.
"""

from __future__ import annotations

import dataclasses
import json
import os

from repro._util.errors import ConfigError
from repro._util.timefmt import month_bounds
from repro.scenarios.spec import (Scenario, builtin_scenarios,
                                  load_scenario, scenario_from_spec)
from repro.sched.simulator import SimConfig

__all__ = ["resolve_scenario", "scenario_sim_config", "sweep_scenario",
           "run_scenario", "run_federated", "calibrate_trace",
           "run_scenario_payload", "ScenarioRunResult"]


def resolve_scenario(ref) -> Scenario:
    """A scenario from a registry name, a spec file path, a spec dict,
    or a :class:`Scenario` instance, whichever ``ref`` is."""
    if isinstance(ref, Scenario):
        return ref
    if isinstance(ref, dict):
        return scenario_from_spec(ref)
    if not isinstance(ref, str):
        raise ConfigError(
            f"scenario ref must be a name, path, dict or Scenario, "
            f"got {type(ref).__name__}")
    zoo = builtin_scenarios()
    if ref in zoo:
        return zoo[ref]
    if os.path.exists(ref):
        return load_scenario(ref)
    raise ConfigError(
        f"unknown scenario {ref!r}: not a registry name "
        f"({sorted(zoo)}) and no such file")


def scenario_sim_config(scn: Scenario, *, seed: int | None = None
                        ) -> SimConfig:
    """The scheduler config a scenario's simulations run under, with
    injection times shifted from month-relative to absolute epochs."""
    origin = month_bounds(scn.months[0])[0]
    injections = scn.injections.shifted(origin) if scn.injections \
        else None
    return SimConfig(seed=scn.seed if seed is None else seed,
                     scenario=injections)


# -- policylab sweeps ---------------------------------------------------------------

def sweep_scenario(scn: Scenario, *, days: int = 7,
                   variant_names: list[str] | None = None):
    """Evaluate the standard policy menu under the scenario's
    injections; returns the list of
    :class:`~repro.policylab.sweep.PolicyOutcome`."""
    from repro.cluster import get_system
    from repro.policylab import PolicySweep, standard_variants
    from repro.workload import WorkloadGenerator, workload_for

    if days < 1:
        raise ConfigError(f"days must be >= 1, got {days}")
    start, month_end = month_bounds(scn.months[0])
    end = min(month_end, start + days * 86400)
    gen = WorkloadGenerator(workload_for(scn.system), seed=scn.seed,
                            rate_scale=scn.rate_scale)
    stream = gen.generate(start, end)
    variants = standard_variants(seed=scn.seed)
    if variant_names is not None:
        known = {v.name: v for v in variants}
        missing = [n for n in variant_names if n not in known]
        if missing:
            raise ConfigError(f"unknown variants {missing}; "
                              f"have {sorted(known)}")
        variants = [known[n] for n in variant_names]
    injections = scenario_sim_config(scn).scenario
    variants = [dataclasses.replace(
        v, config=dataclasses.replace(v.config, scenario=injections))
        for v in variants]
    sweep = PolicySweep(get_system(scn.system), stream)
    return [sweep.evaluate(v) for v in variants]


# -- full runs ----------------------------------------------------------------------

@dataclasses.dataclass
class ScenarioRunResult:
    """What one scenario execution produced."""

    scenario: str
    kind: str
    workdir: str
    #: single: the dashboard HTML path; federated: the deltas report
    report: str = ""
    n_jobs: int = 0
    #: scenario counters from the simulator (injections applied,
    #: fault victims, elastically shrunk nodes)
    counters: dict = dataclasses.field(default_factory=dict)
    #: federated only: (metric, system, value) rows
    delta_rows: list = dataclasses.field(default_factory=list)


def run_scenario(ref, workdir: str, *, shards: int = 0, procs: int = 1,
                 fabric: bool = False, enable_ai: bool = False,
                 workers: int = 4,
                 profile_spec: dict | None = None) -> ScenarioRunResult:
    """Execute a scenario end to end under ``workdir``.

    Single-system scenarios run the full
    :class:`~repro.workflows.main.SchedulingAnalysisWorkflow` (classic
    or sharded per ``shards``/``procs``/``fabric``) with the injection
    stream attached to every month's simulation; ``profile_spec``
    substitutes a trace-calibrated workload (see
    :func:`calibrate_trace`).  Federated scenarios route one stream
    across two systems and land the comparison in
    ``workdir/federated.json``.
    """
    scn = resolve_scenario(ref)
    if scn.kind == "federated":
        return run_federated(scn, workdir)
    if shards and (shards > len(scn.months)
                   or len(scn.months) % shards):
        raise ConfigError(
            f"scenario {scn.name!r} covers {len(scn.months)} month(s); "
            f"{shards} shards need a whole number of months each")

    from repro.workflows.main import (SchedulingAnalysisWorkflow,
                                      WorkflowConfig)

    cfg = WorkflowConfig(
        system=scn.system, months=scn.months, workdir=workdir,
        workers=workers, seed=scn.seed, rate_scale=scn.rate_scale,
        enable_ai=enable_ai, shards=shards, procs=procs, fabric=fabric,
        sim_config=scenario_sim_config(scn), profile_spec=profile_spec)
    wf = SchedulingAnalysisWorkflow(cfg)
    result = wf.run()
    wf.obs.metrics.counter("scenario.runs").inc()
    wf.obs.bus.emit("scenario_run", scn.name, scenario_kind=scn.kind,
                    system=scn.system, months=len(scn.months))
    counters = {
        "injections": int(wf.obs.metrics.counter(
            "sched.scenario.injections").value),
        "victims": int(wf.obs.metrics.counter(
            "sched.scenario.victims").value),
        "shrunk": int(wf.obs.metrics.counter(
            "sched.scenario.shrunk").value),
    }
    return ScenarioRunResult(
        scenario=scn.name, kind=scn.kind, workdir=workdir,
        report=result.dashboard_path, n_jobs=result.n_jobs,
        counters=counters)


def run_federated(ref, workdir: str) -> ScenarioRunResult:
    """Two-system co-scheduling: route, simulate, compare.

    One submission stream is generated against the primary system's
    workload and routed per the federation spec; each system schedules
    its share (injections hit the configured target), and the curated
    outputs feed :func:`repro.analytics.federate.compare_systems`.
    """
    from repro.analytics.federate import compare_systems
    from repro.cluster import get_system
    from repro.frame import Frame
    from repro.pipeline.curate import JOB_CSV_COLUMNS, curate_records
    from repro.sched.simulator import Simulator
    from repro.workload import WorkloadGenerator, workload_for

    scn = resolve_scenario(ref)
    if scn.kind != "federated":
        raise ConfigError(f"scenario {scn.name!r} is not federated")
    fed = scn.federation
    primary = fed.systems[0]
    start = month_bounds(scn.months[0])[0]
    end = month_bounds(scn.months[-1])[1]
    gen = WorkloadGenerator(workload_for(primary), seed=scn.seed,
                            rate_scale=scn.rate_scale)
    stream = gen.generate(start, end)
    routed = _route(stream, fed)

    inject_to = fed.inject or primary
    frames = {}
    counters = {"injections": 0, "victims": 0, "shrunk": 0}
    for name in fed.systems:
        injections = scenario_sim_config(scn).scenario \
            if (name == inject_to and scn.injections) else None
        config = SimConfig(seed=scn.seed, scenario=injections)
        result = Simulator(get_system(name), config).run(routed[name])
        counters["injections"] += result.n_injections
        counters["victims"] += result.n_fault_victims
        counters["shrunk"] += result.n_shrunk_nodes
        job_rows, _ = curate_records(result.jobs)
        frames[name] = Frame.from_records(job_rows,
                                          columns=JOB_CSV_COLUMNS)
    comp = compare_systems(frames)
    rows = comp.delta_rows()
    report = {
        "scenario": scn.name,
        "systems": list(fed.systems),
        "routing": fed.routing,
        "routed_jobs": {name: len(routed[name]) for name in fed.systems},
        "delta_rows": [list(r) for r in rows],
        "relative_rows": [list(r)
                          for r in comp.delta_rows(relative=True)],
    }
    os.makedirs(workdir, exist_ok=True)
    out = os.path.join(workdir, "federated.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
    return ScenarioRunResult(
        scenario=scn.name, kind=scn.kind, workdir=workdir, report=out,
        n_jobs=len(stream), counters=counters, delta_rows=rows)


def _route(stream, fed) -> dict:
    """Split one stream across the federation's systems.

    Dependency and array families stay together (a child inherits its
    parent's route), and jobs larger than the secondary system route to
    the primary regardless of policy — per-system request indices are
    remapped so dependencies stay internally consistent.
    """
    from repro.cluster import get_system

    primary, secondary = fed.systems
    profiles = {name: get_system(name) for name in fed.systems}
    cap = profiles[secondary].total_nodes
    assign: list[str] = []
    for i, req in enumerate(stream):
        if req.array_member_of is not None:
            target = assign[req.array_member_of]
        elif req.dependency_idx is not None:
            target = assign[req.dependency_idx]
        elif fed.routing == "round-robin":
            target = fed.systems[i % 2]
        else:
            target = secondary if req.nnodes <= fed.split_nodes \
                else primary
        if target == secondary and req.nnodes > cap:
            target = primary
        assign.append(target)
    routed: dict[str, list] = {name: [] for name in fed.systems}
    new_idx: dict[int, int] = {}
    for i, req in enumerate(stream):
        target = assign[i]
        bucket = routed[target]
        new_idx[i] = len(bucket)
        dep = req.dependency_idx
        member = req.array_member_of
        # a parent that outgrew the secondary may have been rerouted
        # away from its family; sever the link rather than cross systems
        if dep is not None and assign[dep] != target:
            dep = None
        elif dep is not None:
            dep = new_idx[dep]
        if member is not None and assign[member] != target:
            member = None
        elif member is not None:
            member = new_idx[member]
        # the stream was generated against the primary's partition
        # layout; remap names the target system does not have to its
        # widest partition (jobs keep size/limits/ground truth)
        sysp = profiles[target]
        partition = req.partition
        if not any(p.name == partition for p in sysp.partitions):
            partition = max(sysp.partitions,
                            key=lambda p: p.max_nodes).name
        bucket.append(dataclasses.replace(
            req, partition=partition, dependency_idx=dep,
            array_member_of=member, steps=list(req.steps)))
    return routed


# -- real-trace replay --------------------------------------------------------------

def calibrate_trace(swf_path: str, system: str = "frontier", *,
                    max_rows: int | None = None,
                    cpus_per_node: int | None = None):
    """Fit a public SWF trace to a runnable workload-profile spec.

    Returns ``(profile_spec, CalibrationReport)``; the spec plugs into
    :func:`run_scenario`'s ``profile_spec`` so the full analytics stack
    replays the real trace's statistics.
    """
    from repro.cluster import get_system
    from repro.interop.swf import swf_to_frame
    from repro.workload.calibrate import calibrate_profile
    from repro.workload.spec import profile_to_spec

    sysp = get_system(system)
    jobs = swf_to_frame(swf_path,
                        cpus_per_node=cpus_per_node or sysp.cpus_per_node,
                        max_rows=max_rows)
    profile, report = calibrate_profile(jobs, sysp)
    return profile_to_spec(profile), report


# -- fabric runner ------------------------------------------------------------------

def run_scenario_payload(payload: dict, obs=None) -> dict:
    """Durable scenario execution: ``{"scenario": name|spec, "mode":
    "sweep"|"federated", "days": N, "variants": [...]}`` in, JSON out.

    Sweep mode (the default) evaluates the policy menu under the
    scenario; federated mode runs the two-system comparison into the
    payload's ``workdir``.  Fabric campaigns fan hundreds of these out
    with per-job durability.
    """
    ref = payload.get("scenario")
    if ref is None:
        raise ConfigError('scenario payload needs {"scenario": ...}')
    scn = resolve_scenario(ref)
    mode = payload.get("mode", "sweep")
    if mode == "federated" or scn.kind == "federated":
        result = run_federated(scn, payload.get("workdir",
                                                "scenario-out"))
        return {"scenario": scn.name, "kind": "federated",
                "report": result.report, "counters": result.counters,
                "delta_rows": [list(r) for r in result.delta_rows]}
    if mode != "sweep":
        raise ConfigError(f"unknown scenario mode {mode!r}")
    outcomes = sweep_scenario(
        scn, days=int(payload.get("days", 7)),
        variant_names=payload.get("variants"))
    if obs is not None:
        obs.metrics.counter("scenario.runs").inc()
        obs.bus.emit("scenario_run", scn.name, scenario_kind=scn.kind,
                     system=scn.system, mode=mode)
    return {"scenario": scn.name, "kind": scn.kind, "mode": mode,
            "outcomes": [dataclasses.asdict(o) for o in outcomes]}
