"""The scenario zoo: declarative what-if experiments over the simulator.

Fault injection, power-capped windows, elastic/malleable jobs,
real-trace replay, and federated two-system what-ifs — each described
by a :class:`Scenario` spec and executed through the same scheduler,
workflow, policylab, and analytics machinery as every other run (see
``docs/architecture.md`` § Scenario zoo).
"""

from repro.scenarios.spec import (FederationSpec, Scenario,
                                  builtin_scenarios, load_scenario,
                                  scenario_from_spec, scenario_to_spec)
from repro.scenarios.run import (ScenarioRunResult, calibrate_trace,
                                 resolve_scenario, run_federated,
                                 run_scenario, run_scenario_payload,
                                 scenario_sim_config, sweep_scenario)

__all__ = [
    "Scenario",
    "FederationSpec",
    "ScenarioRunResult",
    "builtin_scenarios",
    "load_scenario",
    "scenario_to_spec",
    "scenario_from_spec",
    "resolve_scenario",
    "scenario_sim_config",
    "sweep_scenario",
    "run_scenario",
    "run_federated",
    "calibrate_trace",
    "run_scenario_payload",
]
