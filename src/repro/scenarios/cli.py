"""The ``repro-scenario`` command.

::

    repro-scenario list
    repro-scenario show node-storm
    repro-scenario run node-storm --workdir out/ [--shards N] [--ai]
    repro-scenario run my-scenario.json --profile profile.json
    repro-scenario sweep power-brownout --days 7
    repro-scenario calibrate trace.swf --system frontier --out prof.json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._util.errors import ReproError
from repro._util.tables import TextTable

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-scenario",
        description="scenario zoo: fault injection, power caps, "
                    "elastic jobs, trace replay, federated what-ifs")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in scenario registry")

    show = sub.add_parser("show", help="print one scenario's JSON spec")
    show.add_argument("scenario", help="registry name or spec file")

    run = sub.add_parser("run", help="run a scenario end to end")
    run.add_argument("scenario", help="registry name or spec file")
    run.add_argument("--workdir", default="scenario-out")
    run.add_argument("--shards", type=int, default=0,
                     help="paper-scale sharded execution (0 = classic)")
    run.add_argument("--procs", type=int, default=1,
                     help="worker processes for the sharded build")
    run.add_argument("--fabric", action="store_true",
                     help="run shard tasks as durable fabric jobs")
    run.add_argument("--workers", type=int, default=4,
                     help="workflow engine concurrency")
    run.add_argument("--ai", action="store_true",
                     help="enable the LLM insight stages")
    run.add_argument("--profile", default=None, metavar="SPEC_JSON",
                     help="trace-calibrated workload profile spec "
                          "(from 'calibrate')")

    sweep = sub.add_parser("sweep",
                           help="policylab sweep under the scenario")
    sweep.add_argument("scenario", help="registry name or spec file")
    sweep.add_argument("--days", type=int, default=7,
                       help="days of workload to sweep")
    sweep.add_argument("--variants", default=None,
                       help="comma-separated policy-variant subset")
    sweep.add_argument("--json", dest="json_out", default=None,
                       metavar="PATH", help="also dump outcomes as JSON")

    cal = sub.add_parser("calibrate",
                         help="fit an SWF trace to a profile spec")
    cal.add_argument("trace", help="SWF trace file")
    cal.add_argument("--system", default="frontier",
                     help="system profile to calibrate against")
    cal.add_argument("--max-rows", type=int, default=None,
                     help="read at most this many trace rows")
    cal.add_argument("--out", default=None, metavar="PATH",
                     help="write the profile spec JSON here")
    return p


def _cmd_list() -> int:
    from repro.scenarios import builtin_scenarios

    table = TextTable(["name", "kind", "injections", "description"])
    for name, scn in sorted(builtin_scenarios().items()):
        inj = scn.injections
        counts = "+".join(
            f"{n}{tag}" for n, tag in
            ((len(inj.faults), "f"), (len(inj.power_caps), "c"),
             (len(inj.elastic), "e")) if n) or "-"
        table.add_row([name, scn.kind, counts, scn.description])
    print(table.render())
    return 0


def _cmd_show(args) -> int:
    from repro.scenarios import resolve_scenario, scenario_to_spec

    print(json.dumps(scenario_to_spec(resolve_scenario(args.scenario)),
                     indent=2))
    return 0


def _cmd_run(args) -> int:
    from repro.scenarios import run_scenario

    profile_spec = None
    if args.profile:
        with open(args.profile, encoding="utf-8") as fh:
            profile_spec = json.load(fh)
    result = run_scenario(
        args.scenario, args.workdir, shards=args.shards,
        procs=args.procs, fabric=args.fabric, workers=args.workers,
        enable_ai=args.ai, profile_spec=profile_spec)
    print(f"scenario {result.scenario} ({result.kind}): "
          f"{result.n_jobs} jobs -> {result.report}")
    c = result.counters
    print(f"  injections={c.get('injections', 0)} "
          f"victims={c.get('victims', 0)} shrunk={c.get('shrunk', 0)}")
    return 0


def _cmd_sweep(args) -> int:
    import dataclasses

    from repro.policylab import PolicySweep
    from repro.scenarios import resolve_scenario, sweep_scenario

    scn = resolve_scenario(args.scenario)
    names = args.variants.split(",") if args.variants else None
    outcomes = sweep_scenario(scn, days=args.days, variant_names=names)
    print(f"scenario {scn.name} on {scn.system}, {args.days} day(s):")
    print(PolicySweep.table(outcomes).render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump([dataclasses.asdict(o) for o in outcomes], fh,
                      indent=2)
    return 0


def _cmd_calibrate(args) -> int:
    from repro.scenarios import calibrate_trace

    spec, report = calibrate_trace(args.trace, args.system,
                                   max_rows=args.max_rows)
    table = TextTable(["parameter", "value"])
    for name, value in report.rows():
        table.add_row([name, round(value, 4)])
    print(table.render())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(spec, fh, indent=2)
        print(f"profile spec -> {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        return _cmd_calibrate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
