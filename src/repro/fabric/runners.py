"""Executable job kinds: payload-in, JSON-result-out functions.

A durable job cannot carry a closure across processes the way the
in-memory :class:`~repro.serve.jobs.JobQueue` does — what survives a
restart is ``(kind, payload)``.  This module is the other half of that
contract: a registry mapping each kind to a runner
``fn(payload, obs) -> result`` where payload and result are both
JSON-serializable.  ``repro.serve`` builds its in-memory job closures
from the *same* runners, so switching a deployment to ``--fabric``
changes where jobs wait, never what they do.

Runners raise :class:`~repro._util.errors.ReproError` for payloads
that can never succeed (the launcher fails those terminally instead of
burning retries) and let transient errors propagate as-is.
"""

from __future__ import annotations

import importlib
import os
import time

from repro._util.errors import ConfigError, DataError, ReproError
from repro._util.timefmt import month_bounds

__all__ = ["BUILTIN_RUNNERS", "run_simulate", "run_insight",
           "run_sleep", "run_noop", "run_shard_sim", "run_shard_emit",
           "run_scenario_job", "load_runners", "simulate_payload"]


def simulate_payload(body: dict) -> dict:
    """Normalize and validate a simulate request body into a payload.

    Shared by ``POST /api/simulate``, campaign expansion, and the
    runner itself, so a payload that validated at submission cannot
    fail validation at execution.  Raises :class:`ConfigError` /
    :class:`DataError` on bad input.
    """
    from repro.cluster import get_system
    from repro.policylab import standard_variants

    payload = {
        "system": str(body.get("system", "testsys")),
        "month": str(body.get("month", "2024-01")),
        "seed": int(body.get("seed", 0)),
        "rate_scale": float(body.get("rate_scale", 0.05)),
        "days": min(31, max(1, int(body.get("days", 7)))),
        "variants": body.get("variants"),
    }
    get_system(payload["system"])       # raises ConfigError if unknown
    month_bounds(payload["month"])      # raises DataError if malformed
    if not 0 < payload["rate_scale"] <= 1.0:
        raise ConfigError("rate_scale must be in (0, 1]")
    names = payload["variants"]
    if names is not None:
        known = {v.name for v in standard_variants(seed=0)}
        missing = [n for n in names if n not in known]
        if missing:
            raise ConfigError(f"unknown variants {missing}; "
                              f"have {sorted(known)}")
        payload["variants"] = [str(n) for n in names]
    return payload


def run_simulate(payload: dict, obs=None) -> dict:
    """One policy-lab sweep over a generated submission stream."""
    import dataclasses

    from repro.cluster import get_system
    from repro.policylab import PolicySweep, standard_variants
    from repro.workload import WorkloadGenerator, workload_for

    payload = simulate_payload(payload)
    system = payload["system"]
    start, end = month_bounds(payload["month"])
    variants = standard_variants(seed=payload["seed"])
    if payload["variants"] is not None:
        known = {v.name: v for v in variants}
        variants = [known[n] for n in payload["variants"]]
    gen = WorkloadGenerator(workload_for(system), seed=payload["seed"],
                            rate_scale=payload["rate_scale"])
    stream = gen.generate(start,
                          min(end, start + payload["days"] * 86400))
    sweep = PolicySweep(get_system(system), stream)
    outcomes = [sweep.evaluate(v) for v in variants]
    return {"system": system, "month": payload["month"],
            "seed": payload["seed"], "n_requests": len(stream),
            "outcomes": [dataclasses.asdict(o) for o in outcomes]}


def run_insight(payload: dict, obs=None) -> dict:
    """One LLM chart-insight analysis over a run's rendered chart."""
    from repro.llm import LLMClient
    from repro.raster import html_to_png
    from repro.store.store import LAYOUT

    root = payload.get("run_root")
    key = payload.get("chart")
    if not root or not isinstance(key, str) or not key:
        raise ConfigError(
            'insight payload needs {"run_root": ..., "chart": ...}')
    html = os.path.join(root, LAYOUT["html"], key + ".html")
    if not os.path.exists(html):
        raise DataError(f"no renderable chart {key!r} under {root!r}")
    png = os.path.join(root, LAYOUT["png"], key + ".png")
    if not os.path.exists(png):
        html_to_png(html, png)
    client = LLMClient(backend=payload.get("backend", "chart-analyst"),
                       context=obs)
    resp = client.insight(png)
    return {"chart": key, "run": payload.get("run", ""),
            "model": resp.model, "insight": resp.text}


def run_shard_sim(payload: dict, obs=None) -> dict:
    """One shard of a chained sharded simulation (paper-scale builds)."""
    from repro.workflows.shard import run_sim_shard

    return run_sim_shard(payload, obs=obs)


def run_shard_emit(payload: dict, obs=None) -> dict:
    """Finalize + curate one origin month of a sharded simulation."""
    from repro.workflows.shard import run_emit_month

    return run_emit_month(payload, obs=obs)


def run_scenario_job(payload: dict, obs=None) -> dict:
    """One scenario-zoo execution (durable campaign fan-out)."""
    from repro.scenarios import run_scenario_payload

    return run_scenario_payload(payload, obs=obs)


def run_sleep(payload: dict, obs=None) -> dict:
    """Sleep in small slices (crash-recovery tests kill mid-sleep)."""
    seconds = float(payload.get("seconds", 0.0))
    if seconds < 0:
        raise ConfigError("seconds must be >= 0")
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        time.sleep(min(0.02, max(0.0, deadline - time.monotonic())))
    return {"slept_s": seconds}


def run_noop(payload: dict, obs=None) -> dict:
    """Do nothing, durably (throughput benchmarks)."""
    return {"ok": True}


BUILTIN_RUNNERS = {
    "simulate": run_simulate,
    "insight": run_insight,
    "shard_sim": run_shard_sim,
    "shard_emit": run_shard_emit,
    "scenario": run_scenario_job,
    "sleep": run_sleep,
    "noop": run_noop,
}


def load_runners(spec: str) -> dict:
    """Extra runners from ``module[:attr]`` (attr defaults to
    ``RUNNERS``): a dict of kind -> callable, or a zero-arg callable
    returning one.  Lets deployments register site-local job kinds on
    ``repro-launcher --runners`` without forking the registry."""
    module_name, _, attr = spec.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ConfigError(f"cannot import runner module "
                          f"{module_name!r}: {exc}") from None
    obj = getattr(module, attr or "RUNNERS", None)
    if callable(obj):
        try:
            obj = obj()
        except TypeError:
            pass                # not a zero-arg factory: rejected below
    if not isinstance(obj, dict):
        raise ReproError(
            f"{spec!r} must name a dict of runners (or a callable "
            f"returning one), got {type(obj).__name__}")
    return dict(obj)
