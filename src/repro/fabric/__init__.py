"""``repro.fabric`` — the durable job fabric: store, launcher, campaigns.

The in-memory job queue inside ``repro.serve`` dies with the process;
this package is its crash-safe counterpart, modeled on Balsam's
service/launcher split:

- :class:`FabricStore` — a stdlib-only SQLite job store (WAL mode,
  under the workdir's ``.store/`` layout) with explicit states
  (``pending → leased → running → done|failed|orphaned``) and an
  append-only transition history;
- :class:`Launcher` — an independent process (``repro-launcher``) that
  leases work with heartbeats and recovers orphaned jobs whose lease
  expired (bounded retries, deterministic backoff);
- :func:`submit_campaign` — a parameter sweep of policy-lab
  simulations whose identity is content-addressed, so it survives
  crashes and resumes exactly where it left off.

``repro-serve --fabric`` enqueues its ``POST`` jobs here instead of
the in-memory queue; any number of launchers drain the same store.
"""

from repro.fabric.store import (
    FABRIC_STATES,
    TERMINAL_STATES,
    FabricJob,
    FabricStore,
    fabric_db_path,
)
from repro.fabric.runners import BUILTIN_RUNNERS, load_runners
from repro.fabric.campaign import expand_campaign, submit_campaign
from repro.fabric.launcher import Launcher, LauncherStats

__all__ = [
    "FABRIC_STATES",
    "TERMINAL_STATES",
    "FabricJob",
    "FabricStore",
    "fabric_db_path",
    "BUILTIN_RUNNERS",
    "load_runners",
    "expand_campaign",
    "submit_campaign",
    "Launcher",
    "LauncherStats",
]
