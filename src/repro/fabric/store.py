"""The durable job store: SQLite-backed states, leases, and history.

The in-memory :class:`repro.serve.jobs.JobQueue` dies with the server
process; queued insight/simulate jobs and whole policy-lab campaigns
are lost on restart.  :class:`FabricStore` is the durable alternative,
shaped after Balsam's service/launcher split: jobs live in one SQLite
database (WAL mode, under the workdir's existing ``.store/`` layout),
move through explicit states, and every state change is appended to an
immutable transition history — the store *is* the audit log.

State machine::

    pending ──lease──► leased ──start──► running ──complete──► done
       ▲                 │                  │
       │                 └──lease expired───┤──error/expiry──► orphaned
       │                                    │                     │
       └───────────── requeue (attempt < max_attempts) ◄──────────┤
                                            │                     │
                                            └──────► failed ◄─────┘

Work is *leased*, never popped: a launcher takes a job by writing a
unique lease token plus an expiry, and must heartbeat to keep it.  A
crashed launcher simply stops heartbeating; any other process that
calls :meth:`requeue_expired` moves the orphan back to ``pending``
(bounded retries, deterministic exponential backoff) where the next
launcher picks it up.  No job is ever lost and no terminal state is
reached twice — ``tests/test_fabric.py`` kills a launcher with
``SIGKILL`` mid-campaign and verifies exactly that from the history.

Every connection is per-operation (no pooling): the store is shared by
request threads in ``repro-serve`` and worker threads in independent
``repro-launcher`` processes, and SQLite's own locking is the only
synchronization this design needs.  Timestamps in the database are
epoch seconds on purpose — they must be comparable *across* processes
and restarts, which monotonic clocks are not; in-process deadline
arithmetic (the launcher's heartbeat cadence) uses ``time.monotonic``.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro._util.errors import ConfigError, DataError

__all__ = ["FabricStore", "FabricJob", "FABRIC_STATES",
           "TERMINAL_STATES", "fabric_db_path"]

#: every legal job state, in lifecycle order
FABRIC_STATES = ("pending", "leased", "running", "done", "failed",
                 "orphaned")

#: states a job never leaves
TERMINAL_STATES = frozenset({"done", "failed"})

#: deterministic exponential backoff bounds for requeued jobs
_BACKOFF_BASE_S = 0.5
_BACKOFF_CAP_S = 60.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS fabric_jobs (
    id              TEXT PRIMARY KEY,
    kind            TEXT NOT NULL,
    payload         TEXT NOT NULL,
    state           TEXT NOT NULL,
    campaign        TEXT,
    attempt         INTEGER NOT NULL DEFAULT 0,
    max_attempts    INTEGER NOT NULL DEFAULT 3,
    not_before_s    REAL NOT NULL DEFAULT 0,
    lease           TEXT,
    worker          TEXT,
    lease_expires_s REAL,
    result          TEXT,
    error           TEXT NOT NULL DEFAULT '',
    created_s       REAL NOT NULL,
    updated_s       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS fabric_jobs_state
    ON fabric_jobs(state, not_before_s, created_s);
CREATE INDEX IF NOT EXISTS fabric_jobs_campaign
    ON fabric_jobs(campaign);
CREATE TABLE IF NOT EXISTS fabric_transitions (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    job    TEXT NOT NULL,
    t_s    REAL NOT NULL,
    src    TEXT NOT NULL,
    dst    TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS fabric_transitions_job
    ON fabric_transitions(job, seq);
CREATE TABLE IF NOT EXISTS fabric_campaigns (
    id        TEXT PRIMARY KEY,
    name      TEXT NOT NULL,
    spec      TEXT NOT NULL,
    created_s REAL NOT NULL
);
"""

_JOB_COLUMNS = ("id", "kind", "payload", "state", "campaign", "attempt",
                "max_attempts", "not_before_s", "lease", "worker",
                "lease_expires_s", "result", "error", "created_s",
                "updated_s")


def fabric_db_path(workdir: str | os.PathLike) -> str:
    """The conventional fabric database location for one workdir
    (shared with the artifact store's ``.store/`` directory)."""
    return os.path.join(os.fspath(workdir), ".store", "fabric.sqlite3")


@dataclass
class FabricJob:
    """One durable job row, decoded."""

    id: str
    kind: str
    payload: dict
    state: str
    campaign: str | None
    attempt: int
    max_attempts: int
    not_before_s: float
    lease: str | None
    worker: str | None
    lease_expires_s: float | None
    result: object
    error: str
    created_s: float
    updated_s: float

    def to_dict(self) -> dict:
        """Polling-endpoint shape, aligned with the in-memory
        :meth:`repro.serve.jobs.Job.to_dict` (``status`` key, epoch
        reporting times)."""
        out = {"id": self.id, "kind": self.kind, "status": self.state,
               "durable": True, "attempt": self.attempt,
               "max_attempts": self.max_attempts,
               "submitted_s": round(self.created_s, 3),
               "updated_s": round(self.updated_s, 3)}
        if self.campaign:
            out["campaign"] = self.campaign
        if self.worker:
            out["worker"] = self.worker
        if self.state == "done":
            out["result"] = self.result
        if self.state == "failed":
            out["error"] = self.error
        return out


def _row_to_job(row: tuple) -> FabricJob:
    d = dict(zip(_JOB_COLUMNS, row))
    d["payload"] = json.loads(d["payload"])
    d["result"] = json.loads(d["result"]) if d["result"] else None
    return FabricJob(**d)


class FabricStore:
    """Crash-safe job store over one SQLite database.

    ``obs`` is an optional :class:`repro.obs.RunContext`; when present
    the store reports ``serve.fabric.*`` counters/gauges and emits a
    ``fabric_transition`` event per state change (the durable history
    in ``fabric_transitions`` is written regardless).
    """

    def __init__(self, path: str | os.PathLike, obs=None,
                 timeout_s: float = 10.0) -> None:
        self.path = os.fspath(path)
        self.obs = obs
        self.timeout_s = timeout_s
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with self._db() as conn:
            # WAL is persistent: set once here, every later connection
            # (any process) inherits readers-don't-block-writers
            conn.execute("PRAGMA journal_mode=WAL")
            conn.executescript(_SCHEMA)

    # -- connections ---------------------------------------------------------------

    @contextmanager
    def _db(self) -> Iterator[sqlite3.Connection]:
        """One short-lived connection per operation, always closed.

        Pooling would pin a connection per server request thread (the
        threaded HTTP server spawns one per connection); at fabric op
        rates the ~0.1 ms open cost is noise next to the fsync.
        """
        conn = sqlite3.connect(self.path, timeout=self.timeout_s,
                               isolation_level=None)
        try:
            conn.execute(
                "PRAGMA busy_timeout=%d" % int(self.timeout_s * 1000))
            conn.execute("PRAGMA synchronous=NORMAL")
            yield conn
        finally:
            conn.close()

    def close(self) -> None:
        """Nothing pooled, nothing to release (kept for symmetry with
        the in-memory queue's lifecycle)."""

    # -- metrics / events ----------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.counter(name).inc()

    def _gauges(self, conn: sqlite3.Connection) -> None:
        if self.obs is None:
            return
        rows = conn.execute(
            "SELECT state, COUNT(*) FROM fabric_jobs GROUP BY state")
        counts = dict(rows.fetchall())
        self.obs.gauge("serve.fabric.pending").set(
            counts.get("pending", 0))
        self.obs.gauge("serve.fabric.running").set(
            counts.get("leased", 0) + counts.get("running", 0))

    def _transition(self, conn: sqlite3.Connection, job_id: str,
                    src: str, dst: str, detail: str = "") -> None:
        """Append one history row (caller holds the transaction)."""
        conn.execute(
            "INSERT INTO fabric_transitions (job, t_s, src, dst, detail)"
            " VALUES (?, ?, ?, ?, ?)",
            (job_id, time.time(), src, dst, detail))
        if self.obs is not None:
            self.obs.bus.emit("fabric_transition", job_id,
                              **{"from": src, "to": dst,
                                 "detail": detail})

    # -- submission ----------------------------------------------------------------

    def submit(self, kind: str, payload: dict, *,
               campaign: str | None = None, job_id: str | None = None,
               max_attempts: int = 3) -> FabricJob:
        """Insert one pending job; idempotent when ``job_id`` is given.

        An explicit ``job_id`` that already exists returns the stored
        job unchanged — that is what lets a crashed campaign submission
        be replayed wholesale without duplicating members.
        """
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        job_id = job_id or f"fj-{uuid.uuid4().hex[:12]}"
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            cur = conn.execute(
                "INSERT OR IGNORE INTO fabric_jobs (id, kind, payload,"
                " state, campaign, max_attempts, created_s, updated_s)"
                " VALUES (?, ?, ?, 'pending', ?, ?, ?, ?)",
                (job_id, kind, json.dumps(payload, sort_keys=True,
                                          default=str),
                 campaign, max_attempts, now, now))
            if cur.rowcount:
                self._transition(conn, job_id, "", "pending",
                                 "submitted")
            conn.execute("COMMIT")
            if cur.rowcount:
                self._count("serve.fabric.submitted")
            self._gauges(conn)
            return self._get(conn, job_id)

    # -- queries -------------------------------------------------------------------

    def _get(self, conn: sqlite3.Connection,
             job_id: str) -> FabricJob | None:
        row = conn.execute(
            "SELECT %s FROM fabric_jobs WHERE id = ?"
            % ", ".join(_JOB_COLUMNS), (job_id,)).fetchone()
        return _row_to_job(row) if row else None

    def get(self, job_id: str) -> FabricJob | None:
        with self._db() as conn:
            return self._get(conn, job_id)

    def list_jobs(self, campaign: str | None = None,
                  state: str | None = None,
                  limit: int | None = None) -> list[FabricJob]:
        sql = "SELECT %s FROM fabric_jobs" % ", ".join(_JOB_COLUMNS)
        where, args = [], []
        if campaign is not None:
            where.append("campaign = ?")
            args.append(campaign)
        if state is not None:
            where.append("state = ?")
            args.append(state)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY created_s, id"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        with self._db() as conn:
            return [_row_to_job(r) for r in conn.execute(sql, args)]

    def counts(self, campaign: str | None = None) -> dict[str, int]:
        """Job count per state (every state present, zeros included)."""
        sql = "SELECT state, COUNT(*) FROM fabric_jobs"
        args: tuple = ()
        if campaign is not None:
            sql += " WHERE campaign = ?"
            args = (campaign,)
        with self._db() as conn:
            found = dict(conn.execute(sql + " GROUP BY state", args))
        return {s: int(found.get(s, 0)) for s in FABRIC_STATES}

    def transitions(self, job_id: str | None = None) -> list[dict]:
        """The append-only history, oldest first."""
        sql = ("SELECT seq, job, t_s, src, dst, detail"
               " FROM fabric_transitions")
        args: tuple = ()
        if job_id is not None:
            sql += " WHERE job = ?"
            args = (job_id,)
        with self._db() as conn:
            rows = conn.execute(sql + " ORDER BY seq", args).fetchall()
        return [{"seq": r[0], "job": r[1], "t_s": r[2], "from": r[3],
                 "to": r[4], "detail": r[5]} for r in rows]

    # -- leasing (the launcher contract) -------------------------------------------

    def lease(self, worker: str, lease_s: float,
              now: float | None = None) -> FabricJob | None:
        """Atomically claim the oldest runnable pending job.

        The claim writes a fresh lease token; every later mutation of
        the job (``start``/``heartbeat``/``complete``/``fail``) must
        present that token, so a stale launcher whose lease expired and
        was re-issued cannot corrupt the second attempt.
        """
        now = time.time() if now is None else now
        token = uuid.uuid4().hex
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT id FROM fabric_jobs WHERE state = 'pending'"
                " AND not_before_s <= ? ORDER BY created_s, id LIMIT 1",
                (now,)).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            job_id = row[0]
            conn.execute(
                "UPDATE fabric_jobs SET state = 'leased', lease = ?,"
                " worker = ?, lease_expires_s = ?, updated_s = ?"
                " WHERE id = ?",
                (token, worker, now + lease_s, now, job_id))
            self._transition(conn, job_id, "pending", "leased",
                             f"worker {worker}")
            conn.execute("COMMIT")
            self._count("serve.fabric.leased")
            self._gauges(conn)
            return self._get(conn, job_id)

    def _guarded_update(self, conn: sqlite3.Connection, job_id: str,
                        lease: str, from_states: tuple[str, ...],
                        set_sql: str, args: tuple) -> str | None:
        """UPDATE guarded by lease token + state; returns the prior
        state on success, None when the lease is stale."""
        marks = ", ".join("?" for _ in from_states)
        row = conn.execute(
            "SELECT state FROM fabric_jobs WHERE id = ? AND lease = ?"
            " AND state IN (%s)" % marks,
            (job_id, lease) + from_states).fetchone()
        if row is None:
            return None
        conn.execute(
            "UPDATE fabric_jobs SET %s WHERE id = ?" % set_sql,
            args + (job_id,))
        return row[0]

    def start(self, job_id: str, lease: str) -> bool:
        """``leased -> running`` (the launcher began executing)."""
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            src = self._guarded_update(
                conn, job_id, lease, ("leased",),
                "state = 'running', updated_s = ?", (now,))
            if src is not None:
                self._transition(conn, job_id, src, "running")
            conn.execute("COMMIT")
            self._gauges(conn)
            return src is not None

    def heartbeat(self, job_id: str, lease: str,
                  lease_s: float) -> bool:
        """Extend a live lease; ``False`` means the lease was lost
        (expired and requeued) and the holder must abandon the job."""
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            src = self._guarded_update(
                conn, job_id, lease, ("leased", "running"),
                "lease_expires_s = ?, updated_s = ?",
                (now + lease_s, now))
            conn.execute("COMMIT")
        if src is not None:
            self._count("serve.fabric.heartbeats")
        return src is not None

    def complete(self, job_id: str, lease: str, result) -> bool:
        """``running|leased -> done`` with the serialized result."""
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            src = self._guarded_update(
                conn, job_id, lease, ("running", "leased"),
                "state = 'done', result = ?, lease = NULL,"
                " lease_expires_s = NULL, updated_s = ?",
                (json.dumps(result, sort_keys=True, default=str), now))
            if src is not None:
                self._transition(conn, job_id, src, "done")
            conn.execute("COMMIT")
            if src is not None:
                self._count("serve.fabric.completed")
            self._gauges(conn)
            return src is not None

    def fail(self, job_id: str, lease: str, error: str, *,
             retryable: bool = True) -> str | None:
        """Record a failed attempt; returns the resulting state.

        Retryable failures requeue with deterministic exponential
        backoff until ``max_attempts`` lease cycles are spent, then
        land in ``failed``; non-retryable ones (bad payload — every
        retry would fail identically) go terminal at once.
        """
        now = time.time()
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT state, attempt, max_attempts FROM fabric_jobs"
                " WHERE id = ? AND lease = ?"
                " AND state IN ('leased', 'running')",
                (job_id, lease)).fetchone()
            if row is None:
                conn.execute("COMMIT")
                return None
            state = self._retire_locked(conn, job_id, row[0], row[1],
                                        row[2], error, retryable, now)
            conn.execute("COMMIT")
            self._gauges(conn)
            return state

    def _retire_locked(self, conn: sqlite3.Connection, job_id: str,
                       src: str, attempt: int, max_attempts: int,
                       error: str, retryable: bool,
                       now: float) -> str:
        """One spent attempt (caller holds the transaction): requeue
        with backoff, or go terminal when retries are exhausted."""
        attempt += 1
        if retryable and attempt < max_attempts:
            backoff = min(_BACKOFF_CAP_S,
                          _BACKOFF_BASE_S * (2.0 ** (attempt - 1)))
            conn.execute(
                "UPDATE fabric_jobs SET state = 'pending', attempt = ?,"
                " not_before_s = ?, lease = NULL, worker = NULL,"
                " lease_expires_s = NULL, error = ?, updated_s = ?"
                " WHERE id = ?",
                (attempt, now + backoff, error, now, job_id))
            self._transition(conn, job_id, src, "pending",
                             f"retry {attempt}/{max_attempts} in "
                             f"{backoff:g}s: {error}")
            self._count("serve.fabric.requeued")
            return "pending"
        conn.execute(
            "UPDATE fabric_jobs SET state = 'failed', attempt = ?,"
            " lease = NULL, lease_expires_s = NULL, error = ?,"
            " updated_s = ? WHERE id = ?",
            (attempt, error, now, job_id))
        self._transition(conn, job_id, src, "failed", error)
        self._count("serve.fabric.failed")
        return "failed"

    def requeue_expired(self, now: float | None = None) -> list[str]:
        """Sweep orphans: leased/running jobs whose lease expired.

        Each orphan is first recorded as ``orphaned`` in the history
        (so a crash leaves an explicit trace, not a mystery gap), then
        immediately requeued or failed under the same bounded-retry
        rule as any other spent attempt.  Any process may run the
        sweep; the launcher does on every heartbeat tick.
        """
        now = time.time() if now is None else now
        swept: list[str] = []
        with self._db() as conn:
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT id, state, attempt, max_attempts, worker"
                " FROM fabric_jobs WHERE state IN ('leased', 'running')"
                " AND lease_expires_s < ? ORDER BY created_s, id",
                (now,)).fetchall()
            for job_id, src, attempt, max_attempts, worker in rows:
                detail = f"lease of worker {worker!r} expired"
                conn.execute(
                    "UPDATE fabric_jobs SET state = 'orphaned',"
                    " updated_s = ? WHERE id = ?", (now, job_id))
                self._transition(conn, job_id, src, "orphaned", detail)
                self._retire_locked(conn, job_id, "orphaned", attempt,
                                    max_attempts, detail, True, now)
                swept.append(job_id)
            conn.execute("COMMIT")
            self._gauges(conn)
        return swept

    # -- campaigns -----------------------------------------------------------------

    @staticmethod
    def campaign_id(name: str, spec: dict) -> str:
        """Deterministic id from name + spec, so resubmitting the same
        campaign resumes it instead of duplicating it."""
        blob = json.dumps({"name": name, "spec": spec}, sort_keys=True,
                          default=str)
        return "cp-" + hashlib.sha256(blob.encode()).hexdigest()[:12]

    def add_campaign(self, campaign_id: str, name: str,
                     spec: dict) -> bool:
        """Register a campaign row; ``False`` when it already exists."""
        with self._db() as conn:
            cur = conn.execute(
                "INSERT OR IGNORE INTO fabric_campaigns"
                " (id, name, spec, created_s) VALUES (?, ?, ?, ?)",
                (campaign_id, name,
                 json.dumps(spec, sort_keys=True, default=str),
                 time.time()))
            return bool(cur.rowcount)

    def get_campaign(self, campaign_id: str) -> dict | None:
        with self._db() as conn:
            row = conn.execute(
                "SELECT id, name, spec, created_s FROM fabric_campaigns"
                " WHERE id = ?", (campaign_id,)).fetchone()
        if row is None:
            return None
        return {"id": row[0], "name": row[1],
                "spec": json.loads(row[2]),
                "created_s": round(row[3], 3)}

    def list_campaigns(self) -> list[dict]:
        with self._db() as conn:
            ids = [r[0] for r in conn.execute(
                "SELECT id FROM fabric_campaigns ORDER BY created_s, id")]
        return [self.campaign_status(i) for i in ids]

    def campaign_status(self, campaign_id: str) -> dict:
        """Aggregate member state; raises for unknown campaigns."""
        meta = self.get_campaign(campaign_id)
        if meta is None:
            raise DataError(f"no campaign {campaign_id!r}")
        counts = self.counts(campaign=campaign_id)
        n = sum(counts.values())
        n_terminal = sum(counts[s] for s in sorted(TERMINAL_STATES))
        meta.update({
            "n_jobs": n,
            "states": counts,
            "done": n > 0 and n_terminal == n,
        })
        return meta
