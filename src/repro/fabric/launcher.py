"""The launcher: an independent process pool that executes leased work.

A :class:`Launcher` is the execution half of the fabric (Balsam's
``launcher/`` shape): it owns no queue and no job state of its own —
everything durable lives in the :class:`~repro.fabric.store.FabricStore`
— it merely leases runnable jobs, executes them through the runner
registry (:mod:`repro.fabric.runners`), and reports outcomes back under
its lease token.

The liveness contract:

- every leased job is heartbeat-extended from one beat thread at
  roughly a third of the lease length, so a healthy launcher never
  loses a lease mid-run, however long the job;
- the same beat tick sweeps :meth:`FabricStore.requeue_expired`, so a
  fleet of launchers collectively recovers any member's orphans;
- a crashed launcher (``kill -9``) simply stops beating — its leases
  expire and the jobs are requeued elsewhere, bounded by each job's
  ``max_attempts``.

Beat *scheduling* uses ``time.monotonic`` (a wall-clock jump must not
stall heartbeats or mass-expire leases from the launcher's own side);
the lease expiry instants stored in the database are epoch seconds
because they must be comparable across processes.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass

from repro._util.errors import ReproError
from repro.fabric.runners import BUILTIN_RUNNERS
from repro.fabric.store import FabricStore, TERMINAL_STATES

__all__ = ["Launcher", "LauncherStats"]


@dataclass
class LauncherStats:
    """What one launcher run did (snapshot, returned by :meth:`run`)."""

    completed: int = 0
    failed: int = 0
    requeued: int = 0
    beats: int = 0

    def to_dict(self) -> dict:
        return {"completed": self.completed, "failed": self.failed,
                "requeued": self.requeued, "beats": self.beats}


class Launcher:
    """Lease, execute, heartbeat, recover — until told to stop.

    ``max_jobs`` bounds how many jobs this launcher finishes before
    exiting (tests, benchmarks); ``idle_exit_s`` exits after the store
    has held no incomplete work for that long (drain-style runs); both
    default to run-forever, the service shape.
    """

    def __init__(self, store: FabricStore, runners: dict | None = None,
                 *, workers: int = 2, lease_s: float = 30.0,
                 poll_s: float = 0.2, launcher_id: str | None = None,
                 max_jobs: int | None = None,
                 idle_exit_s: float | None = None, obs=None,
                 log=None) -> None:
        if workers < 1:
            raise ReproError("launcher needs at least one worker")
        if lease_s <= 0:
            raise ReproError("lease_s must be positive")
        self.store = store
        self.runners = dict(BUILTIN_RUNNERS)
        if runners:
            self.runners.update(runners)
        self.workers = workers
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.id = launcher_id or f"launcher-{threading.get_native_id()}"
        self.max_jobs = max_jobs
        self.idle_exit_s = idle_exit_s
        self.obs = obs
        self.log = log or (lambda msg: None)
        self.stats = LauncherStats()
        self._lock = threading.Lock()
        #: job id -> lease token for everything this launcher is
        #: executing right now (the heartbeat set)
        self._inflight: dict[str, str] = {}
        self._finished = 0
        self._idle_since_m: float | None = None

    # -- main loop -----------------------------------------------------------------

    def run(self, stop: threading.Event | None = None) -> LauncherStats:
        """Block until stopped; returns the run's stats.

        ``stop`` lets an embedding process (tests, ``repro-serve``
        sidecars) request a graceful exit: workers finish their current
        job, nothing new is leased.
        """
        stop = stop if stop is not None else threading.Event()
        self.store.requeue_expired()     # recover promptly on restart
        threads = [
            threading.Thread(target=self._work, args=(stop, i),
                             daemon=True, name=f"{self.id}-worker-{i}")
            for i in range(self.workers)]
        for t in threads:
            t.start()
        beat_every = max(0.05, self.lease_s / 3.0)
        next_beat = time.monotonic()
        try:
            while not stop.is_set():
                now_m = time.monotonic()
                if now_m >= next_beat:
                    self._beat()
                    next_beat = now_m + beat_every
                if self._should_exit(now_m):
                    stop.set()
                    break
                stop.wait(timeout=min(self.poll_s, beat_every))
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=self.lease_s)
        return self.stats

    def _should_exit(self, now_m: float) -> bool:
        with self._lock:
            if self.max_jobs is not None \
                    and self._finished >= self.max_jobs:
                return True
        if self.idle_exit_s is None:
            return False
        counts = self.store.counts()
        busy = sum(v for s, v in counts.items()
                   if s not in TERMINAL_STATES)
        with self._lock:
            if busy:
                self._idle_since_m = None
                return False
            if self._idle_since_m is None:
                self._idle_since_m = now_m
            return now_m - self._idle_since_m >= self.idle_exit_s

    # -- heartbeats / recovery -----------------------------------------------------

    def _beat(self) -> None:
        """Extend every in-flight lease, then sweep for orphans."""
        with self._lock:
            inflight = dict(self._inflight)
            self.stats.beats += 1
        for job_id, lease in sorted(inflight.items()):
            if not self.store.heartbeat(job_id, lease, self.lease_s):
                self.log(f"{self.id}: lost lease on {job_id} "
                         "(expired and requeued elsewhere)")
        requeued = self.store.requeue_expired()
        if requeued:
            with self._lock:
                self.stats.requeued += len(requeued)
            self.log(f"{self.id}: requeued {len(requeued)} orphaned "
                     f"job(s): {', '.join(requeued)}")

    # -- workers -------------------------------------------------------------------

    def _work(self, stop: threading.Event, index: int) -> None:
        worker_id = f"{self.id}/{index}"
        while not stop.is_set():
            with self._lock:
                if self.max_jobs is not None \
                        and self._finished >= self.max_jobs:
                    return
            job = self.store.lease(worker_id, self.lease_s)
            if job is None:
                stop.wait(timeout=self.poll_s)
                continue
            self._execute(job, worker_id)

    def _execute(self, job, worker_id: str) -> None:
        """Run one leased job to a reported outcome.

        Outcome mapping: a :class:`ReproError` is a bad payload — every
        retry would fail identically, so it goes terminal at once; any
        other exception is retryable (transient environment); a
        non-``Exception`` (``KeyboardInterrupt``/``SystemExit``) is
        recorded as a retryable failure and then re-raised so shutdown
        still propagates.
        """
        if not self.store.start(job.id, job.lease):
            return                      # lease lost before we began
        with self._lock:
            self._inflight[job.id] = job.lease
        self.log(f"{worker_id}: running {job.id} ({job.kind})")
        try:
            runner = self.runners.get(job.kind)
            if runner is None:
                raise ReproError(
                    f"no runner for job kind {job.kind!r} "
                    f"(have {sorted(self.runners)})")
            result = runner(job.payload, self.obs)
        except BaseException as exc:
            error = "".join(traceback.format_exception_only(
                type(exc), exc)).strip()
            retryable = not isinstance(exc, ReproError)
            state = self.store.fail(job.id, job.lease, error,
                                    retryable=retryable)
            with self._lock:
                self._inflight.pop(job.id, None)
                self._finished += 1
                if state == "failed":
                    self.stats.failed += 1
            self.log(f"{worker_id}: {job.id} failed -> {state}: {error}")
            if not isinstance(exc, Exception):
                raise
        else:
            self.store.complete(job.id, job.lease, result)
            with self._lock:
                self._inflight.pop(job.id, None)
                self._finished += 1
                self.stats.completed += 1
            self.log(f"{worker_id}: {job.id} done")
