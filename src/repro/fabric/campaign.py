"""Campaigns: resumable parameter sweeps of policy-lab simulations.

A campaign is the fabric's reason to exist at the paper's scale: a
sweep of hundreds of simulations (seeds × policy variants over one
workload window) that must survive server and launcher crashes and
resume where it left off.  The resumability recipe is deterministic
identity, twice over:

- the campaign id is a content hash of ``(name, spec)``, and
- each member job's id is ``<campaign-id>-<index>``,

so resubmitting the same campaign — after a crash mid-submission, a
server restart, or just twice by accident — re-inserts only the
members that are missing (``INSERT OR IGNORE`` in the store) and never
duplicates one that already ran.  Progress is not tracked anywhere
besides the member jobs' own durable states.
"""

from __future__ import annotations

from repro._util.errors import ConfigError
from repro.fabric.runners import simulate_payload
from repro.fabric.store import FabricStore

__all__ = ["expand_campaign", "submit_campaign"]

#: ceiling on members per campaign (a typo'd grid must not flood the
#: store with a million rows before anyone can look at it)
MAX_MEMBERS = 10_000


def expand_campaign(spec: dict) -> list[dict]:
    """The member payloads of one campaign spec, in stable order.

    The spec is a simulate body plus two sweep axes: ``seeds`` (list of
    ints, default ``[0]``) and ``variants`` (list of policy names,
    default the full standard menu).  One member per (seed, variant)
    pair, each a single-variant simulate payload — members are then
    independently schedulable and a crash loses at most one cell of
    the grid, not the whole sweep.
    """
    from repro.policylab import standard_variants

    seeds = spec.get("seeds", [0])
    if not isinstance(seeds, list) or not seeds:
        raise ConfigError("campaign needs a non-empty seeds list")
    variants = spec.get("variants")
    if variants is None:
        variants = [v.name for v in standard_variants(seed=0)]
    if not isinstance(variants, list) or not variants:
        raise ConfigError("campaign needs a non-empty variants list")
    if len(seeds) * len(variants) > MAX_MEMBERS:
        raise ConfigError(
            f"campaign grid has {len(seeds) * len(variants)} members; "
            f"the ceiling is {MAX_MEMBERS}")
    base = {k: spec[k] for k in ("system", "month", "days",
                                 "rate_scale") if k in spec}
    members = []
    for seed in seeds:
        for name in variants:
            members.append(simulate_payload(
                {**base, "seed": int(seed), "variants": [str(name)]}))
    return members


def submit_campaign(store: FabricStore, name: str, spec: dict, *,
                    max_attempts: int = 3) -> dict:
    """Expand and durably enqueue one campaign; returns its status.

    Idempotent end to end: the campaign row and every member insert
    are keyed deterministically, so replaying a crashed or repeated
    submission resumes rather than duplicates (already-terminal
    members stay exactly as they finished).
    """
    members = expand_campaign(spec)     # validate before touching disk
    campaign_id = store.campaign_id(name, spec)
    store.add_campaign(campaign_id, name, spec)
    for index, payload in enumerate(members):
        store.submit("simulate", payload, campaign=campaign_id,
                     job_id=f"{campaign_id}-{index:04d}",
                     max_attempts=max_attempts)
    return store.campaign_status(campaign_id)
