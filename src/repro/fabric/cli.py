"""The ``repro-launcher`` command: execute durable jobs from a store.

::

    repro-serve --workdir out/ --fabric &        # enqueues durably
    repro-launcher --workdir out/ --workers 4    # executes, forever

or point several launchers (any mix of machines sharing the
filesystem) at one explicit database::

    repro-launcher --db out/.store/fabric.sqlite3 --workers 8

``SIGTERM``/``SIGINT`` request a graceful exit: workers finish the job
they hold, nothing new is leased.  A launcher killed outright loses
nothing — its leases expire and any surviving launcher (or the next
one started) requeues the orphaned jobs.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro._util.errors import ReproError
from repro.fabric.launcher import Launcher
from repro.fabric.runners import load_runners
from repro.fabric.store import FabricStore, fabric_db_path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-launcher",
        description="execute durable fabric jobs (the launcher half "
                    "of repro-serve --fabric)")
    target = p.add_mutually_exclusive_group(required=True)
    target.add_argument("--workdir",
                        help="workdir whose .store/fabric.sqlite3 to "
                             "drain")
    target.add_argument("--db", help="explicit fabric database path")
    p.add_argument("--workers", type=int, default=2,
                   help="concurrent jobs this launcher executes")
    p.add_argument("--lease", type=float, default=30.0,
                   help="lease length in seconds (heartbeats extend "
                        "it at a third of this)")
    p.add_argument("--poll", type=float, default=0.2,
                   help="idle poll interval in seconds")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after finishing this many jobs")
    p.add_argument("--idle-exit", type=float, default=None,
                   metavar="S",
                   help="exit after the store has held no incomplete "
                        "work for S seconds (drain mode)")
    p.add_argument("--runners", action="append", default=[],
                   metavar="MODULE[:ATTR]",
                   help="import extra job-kind runners (repeatable)")
    p.add_argument("--launcher-id", default=None,
                   help="stable identity recorded on leases "
                        "(default: launcher-<native thread id>)")
    p.add_argument("--verbose", action="store_true",
                   help="log each lease/outcome to stderr")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    db = args.db or fabric_db_path(args.workdir)
    log = (lambda msg: print(msg, file=sys.stderr)) if args.verbose \
        else None
    try:
        extra: dict = {}
        for spec in args.runners:
            extra.update(load_runners(spec))
        store = FabricStore(db)
        launcher = Launcher(store, extra, workers=args.workers,
                            lease_s=args.lease, poll_s=args.poll,
                            launcher_id=args.launcher_id,
                            max_jobs=args.max_jobs,
                            idle_exit_s=args.idle_exit, log=log)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    stop = threading.Event()

    def request_shutdown(signum, frame) -> None:   # pragma: no cover
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    counts = store.counts()
    print(f"repro-launcher: {launcher.id} on {db} "
          f"({args.workers} workers, lease {args.lease:g}s; "
          f"{counts['pending']} pending)")
    stats = launcher.run(stop)
    print(f"repro-launcher: exit — {stats.completed} completed, "
          f"{stats.failed} failed, {stats.requeued} requeued")
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
