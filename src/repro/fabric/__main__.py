"""``python -m repro.fabric`` — alias for the ``repro-launcher`` CLI."""

from repro.fabric.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
