"""Future-work extension: predicted walltimes and time reclamation.

Section 6: "embedding AI-predicted walltime estimation into job
submission workflows, enabling dynamic rescheduling and time
reclamation."  Implemented as:

- :mod:`repro.predict.walltime` — a per-user quantile predictor trained
  on historical accounting records (hierarchical fallback user → account
  → job class → global), with accuracy/coverage metrics;
- :mod:`repro.predict.reclaim` — a what-if replay: the same submission
  stream is re-scheduled with predicted limits substituted for user
  requests, and queue waits / backfill rates / timeout risk are compared
  against the baseline.
"""

from repro.predict.walltime import WalltimePredictor, PredictorMetrics
from repro.predict.reclaim import ReclamationStudy, ReclamationReport

__all__ = [
    "WalltimePredictor",
    "PredictorMetrics",
    "ReclamationStudy",
    "ReclamationReport",
]
