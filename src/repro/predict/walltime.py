"""Per-user quantile walltime prediction.

The predictor learns each user's runtime distribution from finished jobs
and predicts a limit at a configurable quantile plus safety margin.
Sparse users fall back up a hierarchy: user → account → job-name prefix
→ global.  This is deliberately the simplest model that captures the
paper's observation — users chronically over-request, so even a
coarse history-based estimate reclaims large amounts of walltime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util.errors import ConfigError, DataError
from repro.slurm.records import JobRecord

__all__ = ["WalltimePredictor", "PredictorMetrics"]

#: states whose elapsed time reflects the job's true demand
_TRAIN_STATES = ("COMPLETED", "TIMEOUT")


@dataclass
class PredictorMetrics:
    """Holdout evaluation of a predictor."""

    n_jobs: int
    #: fraction of jobs whose actual runtime fit inside the prediction
    coverage: float
    #: median of predicted / actual (request inflation under the model)
    median_inflation: float
    #: median of user-requested / actual, for comparison
    median_request_inflation: float
    #: node-hours saved vs user requests (positive = reclaimed)
    reclaimed_node_hours: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("coverage", self.coverage),
            ("median_inflation_predicted", self.median_inflation),
            ("median_inflation_requested", self.median_request_inflation),
            ("reclaimed_node_hours", self.reclaimed_node_hours),
        ]


class WalltimePredictor:
    """Quantile predictor with hierarchical fallback."""

    def __init__(self, quantile: float = 0.9, safety: float = 1.25,
                 min_samples: int = 5, floor_s: int = 600) -> None:
        if not 0.5 <= quantile < 1.0:
            raise ConfigError("quantile must be in [0.5, 1)")
        if safety < 1.0:
            raise ConfigError("safety margin must be >= 1")
        self.quantile = quantile
        self.safety = safety
        self.min_samples = min_samples
        self.floor_s = floor_s
        self._by_user: dict[str, list[int]] = {}
        self._by_account: dict[str, list[int]] = {}
        self._by_name: dict[str, list[int]] = {}
        self._global: list[int] = []
        self.trained = False

    # -- training ---------------------------------------------------------------

    def fit(self, records: list[JobRecord]) -> "WalltimePredictor":
        """Learn from finished jobs (COMPLETED and TIMEOUT)."""
        n = 0
        for job in records:
            if job.state not in _TRAIN_STATES or job.elapsed <= 0:
                continue
            el = job.elapsed
            self._by_user.setdefault(job.user, []).append(el)
            self._by_account.setdefault(job.account, []).append(el)
            self._by_name.setdefault(self._name_key(job.job_name),
                                     []).append(el)
            self._global.append(el)
            n += 1
        if n == 0:
            raise DataError("no trainable records (COMPLETED/TIMEOUT)")
        self.trained = True
        return self

    @staticmethod
    def _name_key(job_name: str) -> str:
        return job_name.split("_", 1)[0]

    # -- inference ----------------------------------------------------------------

    def predict(self, user: str, account: str = "", job_name: str = "",
                requested_s: int | None = None) -> int:
        """Predicted walltime limit in seconds.

        Never exceeds the user's own request when one is given (the
        hybrid deployment: predictions only ever tighten limits).
        """
        if not self.trained:
            raise DataError("predictor not fitted")
        for pool in (self._by_user.get(user),
                     self._by_account.get(account),
                     self._by_name.get(self._name_key(job_name)),
                     self._global):
            if pool and len(pool) >= self.min_samples:
                base = float(np.quantile(pool, self.quantile))
                break
        else:
            base = float(np.quantile(self._global, self.quantile))
        pred = max(self.floor_s, int(base * self.safety))
        pred = 60 * int(np.ceil(pred / 60.0))
        if requested_s is not None:
            pred = min(pred, requested_s)
        return pred

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, records: list[JobRecord]) -> PredictorMetrics:
        """Holdout metrics over finished jobs."""
        preds, actuals, requests, nodes = [], [], [], []
        for job in records:
            if job.state not in _TRAIN_STATES or job.elapsed <= 0:
                continue
            preds.append(self.predict(job.user, job.account, job.job_name,
                                      job.timelimit_s))
            actuals.append(job.elapsed)
            requests.append(job.timelimit_s)
            nodes.append(job.nnodes)
        if not preds:
            raise DataError("no evaluable records")
        p = np.array(preds, dtype=float)
        a = np.array(actuals, dtype=float)
        r = np.array(requests, dtype=float)
        nn = np.array(nodes, dtype=float)
        return PredictorMetrics(
            n_jobs=len(p),
            coverage=float((p >= a).mean()),
            median_inflation=float(np.median(p / a)),
            median_request_inflation=float(np.median(r / a)),
            reclaimed_node_hours=float(((r - p) * nn).sum() / 3600.0),
        )
