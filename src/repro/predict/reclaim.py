"""Time-reclamation what-if: re-schedule with predicted limits.

The study trains a predictor on one window, substitutes predicted limits
into the next window's submission stream (hybrid policy: a prediction
can only tighten a request), replays the scheduler, and compares queue
behaviour.  Tighter limits shrink the backfill scheduler's walltime
estimates, letting more jobs fit reservation windows — the mechanism
behind the paper's "reclaim unused time to reduce queue delays".
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro._util.timefmt import month_bounds
from repro.predict.walltime import WalltimePredictor
from repro.sched.simulator import SimConfig, Simulator
from repro.workload.generate import WorkloadGenerator
from repro.workload.profiles import workload_for

__all__ = ["ReclamationStudy", "ReclamationReport"]


@dataclass
class ReclamationReport:
    """Baseline vs predicted-limit scheduling outcomes."""

    n_jobs: int
    baseline_mean_wait_s: float
    predicted_mean_wait_s: float
    baseline_median_wait_s: float
    predicted_median_wait_s: float
    baseline_backfilled: int
    predicted_backfilled: int
    #: jobs whose predicted limit fell below their true runtime — the
    #: cost side of tighter limits (they now TIMEOUT)
    induced_timeouts: int
    baseline_timeouts: int
    requested_node_hours: float
    predicted_node_hours: float
    #: the third scenario: predicted limits + checkpoint/resubmit
    #: (Section 6's full "dynamic rescheduling" loop); zero when the
    #: study ran without it
    resubmit_mean_wait_s: float = 0.0
    resubmit_unfinished: int = 0          # still TIMEOUT after retries
    resubmit_extra_restarts: int = 0

    @property
    def wait_improvement(self) -> float:
        """Relative mean-wait reduction (positive = better)."""
        if self.baseline_mean_wait_s == 0:
            return 0.0
        return 1.0 - self.predicted_mean_wait_s / self.baseline_mean_wait_s

    @property
    def reclaimed_node_hours(self) -> float:
        return self.requested_node_hours - self.predicted_node_hours

    def rows(self) -> list[tuple[str, float, float]]:
        return [
            ("mean_wait_s", self.baseline_mean_wait_s,
             self.predicted_mean_wait_s),
            ("median_wait_s", self.baseline_median_wait_s,
             self.predicted_median_wait_s),
            ("backfilled_jobs", float(self.baseline_backfilled),
             float(self.predicted_backfilled)),
            ("timeouts", float(self.baseline_timeouts),
             float(self.induced_timeouts + self.baseline_timeouts)),
        ]


class ReclamationStudy:
    """Train on one month, replay the next with predicted limits."""

    def __init__(self, system: str, train_month: str, eval_month: str, *,
                 seed: int = 0, rate_scale: float = 1.0,
                 predictor: WalltimePredictor | None = None,
                 with_resubmit: bool = False) -> None:
        self.system = system
        self.train_month = train_month
        self.eval_month = eval_month
        self.seed = seed
        self.rate_scale = rate_scale
        self.predictor = predictor or WalltimePredictor()
        self.with_resubmit = with_resubmit

    def run(self) -> ReclamationReport:
        profile = workload_for(self.system)
        gen = WorkloadGenerator(profile, seed=self.seed,
                                rate_scale=self.rate_scale)

        # 1) train on the first month's schedule
        train_reqs = gen.generate(*month_bounds(self.train_month))
        sim = Simulator(profile.system, SimConfig(seed=self.seed))
        train_result = sim.run(train_reqs)
        self.predictor.fit(train_result.jobs)

        # 2) baseline replay of the evaluation month
        eval_reqs = gen.generate(*month_bounds(self.eval_month))
        baseline = Simulator(profile.system,
                             SimConfig(seed=self.seed)).run(eval_reqs)

        # 3) what-if replay with predicted limits
        predicted_reqs = []
        induced = 0
        for req in eval_reqs:
            limit = self.predictor.predict(req.user, req.account,
                                           req.job_name, req.timelimit_s)
            # induced timeout: would have completed under the user's
            # request, but the tightened limit cuts it short
            if req.outcome == "COMPLETED" and \
                    req.true_runtime_s <= req.timelimit_s and \
                    req.true_runtime_s > limit:
                induced += 1
            predicted_reqs.append(dataclasses.replace(
                req, timelimit_s=limit,
                steps=list(req.steps)))
        predicted = Simulator(profile.system,
                              SimConfig(seed=self.seed)).run(predicted_reqs)

        resubmit_wait = 0.0
        resubmit_unfinished = 0
        resubmit_restarts = 0
        if self.with_resubmit:
            # 4) predicted limits + checkpoint/resubmit: induced
            # timeouts finish in later slices instead of losing work
            res = Simulator(profile.system, SimConfig(
                seed=self.seed, resubmit_timeouts=3)).run(
                    [dataclasses.replace(r, steps=list(r.steps))
                     for r in predicted_reqs])
            resubmit_wait = float(np.mean([j.wait_s for j in res.jobs]))
            resubmit_unfinished = sum(j.state == "TIMEOUT"
                                      for j in res.jobs)
            resubmit_restarts = sum(j.restarts for j in res.jobs)

        waits_base = np.array([j.wait_s for j in baseline.jobs])
        waits_pred = np.array([j.wait_s for j in predicted.jobs])
        req_nh = sum(r.timelimit_s * r.nnodes for r in eval_reqs) / 3600.0
        pred_nh = sum(r.timelimit_s * r.nnodes
                      for r in predicted_reqs) / 3600.0
        return ReclamationReport(
            n_jobs=len(eval_reqs),
            baseline_mean_wait_s=float(waits_base.mean()),
            predicted_mean_wait_s=float(waits_pred.mean()),
            baseline_median_wait_s=float(np.median(waits_base)),
            predicted_median_wait_s=float(np.median(waits_pred)),
            baseline_backfilled=baseline.n_backfilled,
            predicted_backfilled=predicted.n_backfilled,
            induced_timeouts=induced,
            baseline_timeouts=sum(j.state == "TIMEOUT"
                                  for j in baseline.jobs),
            requested_node_hours=req_nh,
            predicted_node_hours=pred_nh,
            resubmit_mean_wait_s=resubmit_wait,
            resubmit_unfinished=resubmit_unfinished,
            resubmit_extra_restarts=resubmit_restarts,
        )
