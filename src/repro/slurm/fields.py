"""The Slurm accounting field catalog.

The paper: "From the 118 fields available in the Slurm accounting
database, a subset of 50+ fields was selected based on their relevance
and utility ... Redundant, sensitive, or less informative fields, such as
those offering duplicative time representations (e.g., Elapsed vs.
ElapsedRaw), were excluded."

:data:`ALL_FIELDS` enumerates the full catalog (118 fields, matching
contemporary ``sacct --helpformat``); each :class:`FieldSpec` carries its
Table-1 category when selected, a value kind used by the emitter/parser,
and an exclusion reason when not selected.  :data:`SELECTED_FIELDS` is
exactly the curated set; :data:`OBTAIN_FIELDS` is the slightly larger set
(60 fields) the *Obtain data* stage queries, per Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util.errors import ConfigError

__all__ = [
    "FieldSpec",
    "ALL_FIELDS",
    "FIELDS_BY_NAME",
    "SELECTED_FIELDS",
    "OBTAIN_FIELDS",
    "CATEGORIES",
    "selected_by_category",
]

#: Table-1 category names, in the paper's order.
CATEGORIES = (
    "Job Identification",
    "Timing Information",
    "Resource Requests",
    "Resource Usage",
    "IO Related",
    "Job State",
    "Scheduling Metadata",
    "Special Indicators",
    "Misc",
)

#: Value kinds understood by the emitter and parser.
KINDS = (
    "str",        # raw text
    "int",        # plain integer
    "count",      # integer, K-suffixed at >=1000 (NNodes, NCPUs)
    "duration",   # [DD-]HH:MM:SS
    "timestamp",  # YYYY-MM-DDTHH:MM:SS | Unknown
    "mem",        # ReqMem-style 4Gc / 512000Mn
    "bytes",      # disk IO totals, plain integer bytes
    "exitcode",   # code:signal
    "tres",       # comma-separated name=value list
    "float",
)


@dataclass(frozen=True)
class FieldSpec:
    """One accounting field.

    ``selected`` fields form the curated Table-1 dataset; the rest carry an
    ``exclusion`` explaining why curation drops them (redundant, sensitive,
    or low-information — the paper's three reasons).
    """

    name: str
    kind: str
    category: str | None = None          # Table-1 category when selected
    selected: bool = False
    obtain: bool = False                 # part of the 60-field Obtain query
    description: str = ""
    exclusion: str | None = None
    aliases: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"field {self.name}: unknown kind {self.kind!r}")
        if self.selected and self.category not in CATEGORIES:
            raise ConfigError(
                f"selected field {self.name} needs a Table-1 category")
        if self.selected and not self.obtain:
            raise ConfigError(
                f"selected field {self.name} must be part of the Obtain query")


def _sel(name: str, kind: str, category: str, desc: str,
         aliases: tuple[str, ...] = ()) -> FieldSpec:
    return FieldSpec(name, kind, category, selected=True, obtain=True,
                     description=desc, aliases=aliases)


def _obt(name: str, kind: str, desc: str) -> FieldSpec:
    """Queried by Obtain (part of the 60) but not in the Table-1 listing."""
    return FieldSpec(name, kind, obtain=True, description=desc)


def _exc(name: str, kind: str, reason: str, desc: str = "") -> FieldSpec:
    return FieldSpec(name, kind, description=desc, exclusion=reason)


_REDUNDANT = "redundant: duplicative representation of a selected field"
_SENSITIVE = "sensitive: identifies people/projects beyond analysis needs"
_LOWINFO = "low information for scheduling analytics"

ALL_FIELDS: tuple[FieldSpec, ...] = (
    # --- Job Identification ---------------------------------------------------
    _sel("JobID", "str", "Job Identification",
         "Job (or job-step, as <jobid>.<step>) identifier"),
    _sel("Partition", "str", "Job Identification", "Partition the job ran in"),
    _sel("Reservation", "str", "Job Identification", "Reservation name, if any"),
    _sel("ReservationID", "str", "Job Identification", "Reservation numeric id",
         aliases=("ReservationId",)),
    # --- Timing Information -----------------------------------------------------
    _sel("SubmitTime", "timestamp", "Timing Information",
         "Time the job entered the queue", aliases=("Submit",)),
    _sel("StartTime", "timestamp", "Timing Information",
         "Time the job began execution", aliases=("Start",)),
    _sel("EndTime", "timestamp", "Timing Information",
         "Time the job terminated", aliases=("End",)),
    _sel("Elapsed", "duration", "Timing Information", "Wall-clock runtime"),
    _sel("Timelimit", "duration", "Timing Information",
         "Requested wall-time limit"),
    # --- Resource Requests ------------------------------------------------------
    _sel("NNodes", "count", "Resource Requests", "Number of allocated nodes"),
    _sel("NCPUs", "count", "Resource Requests", "Number of allocated CPUs",
         aliases=("NCPUS",)),
    _sel("NTasks", "count", "Resource Requests", "Number of tasks (steps)"),
    _sel("ReqMem", "mem", "Resource Requests", "Requested memory (per node/CPU)"),
    _sel("ReqGRES", "tres", "Resource Requests",
         "Requested generic resources (GPUs)"),
    _sel("Layout", "str", "Resource Requests", "Task layout of a step"),
    # --- Resource Usage -----------------------------------------------------------
    _sel("VMSize", "bytes", "Resource Usage", "Virtual memory high-water mark",
         aliases=("MaxVMSize",)),
    _sel("AveCPU", "duration", "Resource Usage", "Average CPU time per task"),
    _sel("MaxRSS", "bytes", "Resource Usage", "Peak resident set size"),
    _sel("TotalCPU", "duration", "Resource Usage",
         "Total CPU time (user+system)"),
    _sel("NodeList", "str", "Resource Usage", "Compact allocated-node list"),
    _sel("ConsumedEnergy", "int", "Resource Usage", "Energy consumed (joules)"),
    # --- IO Related -----------------------------------------------------------------
    _sel("WorkDir", "str", "IO Related", "Working directory at submission"),
    _sel("AveDiskRead", "bytes", "IO Related", "Average bytes read per task"),
    _sel("AveDiskWrite", "bytes", "IO Related", "Average bytes written per task"),
    _sel("MaxDiskRead", "bytes", "IO Related", "Max bytes read by a task"),
    _sel("MaxDiskWrite", "bytes", "IO Related", "Max bytes written by a task"),
    # --- Job State ---------------------------------------------------------------------
    _sel("State", "str", "Job State", "Final job state"),
    _sel("ExitCode", "exitcode", "Job State", "exit:signal of the job script"),
    _sel("Reason", "str", "Job State", "Last scheduler wait reason"),
    _sel("Suspended", "duration", "Job State", "Time spent suspended"),
    _sel("Restarts", "int", "Job State", "Number of requeue/restarts"),
    _sel("Constraints", "str", "Job State", "Feature constraints requested"),
    # --- Scheduling Metadata ----------------------------------------------------------
    _sel("Priority", "int", "Scheduling Metadata", "Final multifactor priority"),
    _sel("Eligible", "timestamp", "Scheduling Metadata",
         "Time the job became eligible to run"),
    _sel("QOS", "str", "Scheduling Metadata", "Quality-of-service level"),
    _sel("QOSReq", "str", "Scheduling Metadata", "QOS requested at submission",
         aliases=("QOSREQ",)),
    _sel("Flags", "str", "Scheduling Metadata",
         "Scheduling flags (contains BackFill when backfilled)"),
    _sel("TRESUsageInAve", "tres", "Scheduling Metadata",
         "Average trackable-resource usage"),
    _sel("TRESReq", "tres", "Scheduling Metadata",
         "Requested trackable resources"),
    # --- Special Indicators ----------------------------------------------------------
    _sel("Backfill", "int", "Special Indicators",
         "1 when started by the backfill scheduler (derived from Flags)"),
    _sel("Dependency", "str", "Special Indicators",
         "Job dependency specification"),
    _sel("ArrayJobID", "str", "Special Indicators",
         "Parent id for array members"),
    # --- Misc ------------------------------------------------------------------------------
    _sel("Comment", "str", "Misc", "User comment"),
    _sel("SystemComment", "str", "Misc", "System-generated comment"),
    _sel("AdminComment", "str", "Misc", "Administrator comment"),
    # --- Obtain-only (queried, useful for analytics joins; 60-field set) ---------------
    _obt("User", "str", "Submitting user name"),
    _obt("UID", "int", "Submitting user id"),
    _obt("Account", "str", "Charge account"),
    _obt("Cluster", "str", "Cluster name"),
    _obt("JobName", "str", "Job script name"),
    _obt("Group", "str", "Unix group"),
    _obt("GID", "int", "Unix group id"),
    _obt("AllocNodes", "count", "Nodes allocated (accounting view)"),
    _obt("AllocCPUS", "count", "CPUs allocated (accounting view)"),
    _obt("ReqNodes", "count", "Nodes requested at submission"),
    _obt("ReqCPUS", "count", "CPUs requested at submission"),
    _obt("SystemCPU", "duration", "System CPU time"),
    _obt("UserCPU", "duration", "User CPU time"),
    _obt("AveRSS", "bytes", "Average resident set size"),
    _obt("ExitSignal", "int", "Terminating signal, if any"),
    # --- Excluded: redundant time/format representations -----------------------------
    _exc("ElapsedRaw", "int", _REDUNDANT, "Elapsed in raw seconds"),
    _exc("CPUTime", "duration", _REDUNDANT, "Elapsed * NCPUs"),
    _exc("CPUTimeRAW", "int", _REDUNDANT, "CPUTime in raw seconds"),
    _exc("TimelimitRaw", "int", _REDUNDANT, "Timelimit in raw minutes"),
    _exc("QOSRAW", "int", _REDUNDANT, "Numeric id of QOS"),
    _exc("JobIDRaw", "str", _REDUNDANT, "Raw numeric job id"),
    _exc("ConsumedEnergyRaw", "int", _REDUNDANT, "Energy in raw joules"),
    _exc("PlannedCPURAW", "int", _REDUNDANT, "Planned CPU time, raw"),
    _exc("Planned", "duration", _REDUNDANT,
         "Queue wait (derivable from Submit/Start)"),
    _exc("PlannedCPU", "duration", _REDUNDANT, "Planned CPU time"),
    _exc("AllocTRES", "tres", _REDUNDANT, "Allocated TRES (TRESReq covers)"),
    # --- Excluded: sensitive -----------------------------------------------------------
    _exc("SubmitLine", "str", _SENSITIVE, "Full submission command line"),
    _exc("WCKey", "str", _SENSITIVE, "Workload characterization key"),
    _exc("WCKeyID", "int", _SENSITIVE, "Workload characterization key id"),
    _exc("McsLabel", "str", _SENSITIVE, "Multi-category security label"),
    _exc("Extra", "str", _SENSITIVE, "Arbitrary admin-attached data"),
    _exc("Licenses", "str", _SENSITIVE, "Licenses requested"),
    # --- Excluded: low information ------------------------------------------------------
    _exc("AssocID", "int", _LOWINFO, "Association database id"),
    _exc("DBIndex", "int", _LOWINFO, "Row index in slurmdbd"),
    _exc("BlockID", "str", _LOWINFO, "BlueGene block id (obsolete)"),
    _exc("Container", "str", _LOWINFO, "OCI container bundle"),
    _exc("DerivedExitCode", "exitcode", _LOWINFO, "Highest step exit code"),
    _exc("FailedNode", "str", _LOWINFO, "Node that caused failure"),
    _exc("AveCPUFreq", "int", _LOWINFO, "Average weighted CPU frequency"),
    _exc("ReqCPUFreq", "int", _LOWINFO, "Requested CPU frequency"),
    _exc("ReqCPUFreqMin", "int", _LOWINFO, "Requested min CPU frequency"),
    _exc("ReqCPUFreqMax", "int", _LOWINFO, "Requested max CPU frequency"),
    _exc("ReqCPUFreqGov", "str", _LOWINFO, "Requested CPU governor"),
    _exc("AvePages", "int", _LOWINFO, "Average page faults"),
    _exc("MaxPages", "int", _LOWINFO, "Max page faults"),
    _exc("MaxPagesNode", "str", _LOWINFO, "Node with max page faults"),
    _exc("MaxPagesTask", "int", _LOWINFO, "Task with max page faults"),
    _exc("MaxRSSNode", "str", _LOWINFO, "Node with peak RSS"),
    _exc("MaxRSSTask", "int", _LOWINFO, "Task with peak RSS"),
    _exc("MaxVMSizeNode", "str", _LOWINFO, "Node with peak VM size"),
    _exc("MaxVMSizeTask", "int", _LOWINFO, "Task with peak VM size"),
    _exc("MaxDiskReadNode", "str", _LOWINFO, "Node with max read"),
    _exc("MaxDiskReadTask", "int", _LOWINFO, "Task with max read"),
    _exc("MaxDiskWriteNode", "str", _LOWINFO, "Node with max write"),
    _exc("MaxDiskWriteTask", "int", _LOWINFO, "Task with max write"),
    _exc("MinCPU", "duration", _LOWINFO, "Minimum CPU time of a task"),
    _exc("MinCPUNode", "str", _LOWINFO, "Node with min CPU time"),
    _exc("MinCPUTask", "int", _LOWINFO, "Task with min CPU time"),
    _exc("TRESUsageInMax", "tres", _LOWINFO, "Max TRES input usage"),
    _exc("TRESUsageInMaxNode", "str", _LOWINFO, "Node of max TRES usage"),
    _exc("TRESUsageInMaxTask", "int", _LOWINFO, "Task of max TRES usage"),
    _exc("TRESUsageInMin", "tres", _LOWINFO, "Min TRES input usage"),
    _exc("TRESUsageInMinNode", "str", _LOWINFO, "Node of min TRES usage"),
    _exc("TRESUsageInMinTask", "int", _LOWINFO, "Task of min TRES usage"),
    _exc("TRESUsageInTot", "tres", _LOWINFO, "Total TRES input usage"),
    _exc("TRESUsageOutAve", "tres", _LOWINFO, "Average TRES output usage"),
    _exc("TRESUsageOutMax", "tres", _LOWINFO, "Max TRES output usage"),
    _exc("TRESUsageOutMaxNode", "str", _LOWINFO, "Node of max TRES output"),
    _exc("TRESUsageOutMaxTask", "int", _LOWINFO, "Task of max TRES output"),
    _exc("TRESUsageOutMin", "tres", _LOWINFO, "Min TRES output usage"),
    _exc("TRESUsageOutMinNode", "str", _LOWINFO, "Node of min TRES output"),
    _exc("TRESUsageOutMinTask", "int", _LOWINFO, "Task of min TRES output"),
    _exc("TRESUsageOutTot", "tres", _LOWINFO, "Total TRES output usage"),
)

FIELDS_BY_NAME: dict[str, FieldSpec] = {}
for _f in ALL_FIELDS:
    if _f.name in FIELDS_BY_NAME:
        raise ConfigError(f"duplicate field {_f.name}")
    FIELDS_BY_NAME[_f.name] = _f
    for _a in _f.aliases:
        FIELDS_BY_NAME.setdefault(_a, _f)

#: The curated Table-1 set (order: catalog order, i.e. grouped by category).
SELECTED_FIELDS: tuple[FieldSpec, ...] = tuple(
    f for f in ALL_FIELDS if f.selected)

#: The 60-field set the Obtain stage queries from the database.
OBTAIN_FIELDS: tuple[FieldSpec, ...] = tuple(
    f for f in ALL_FIELDS if f.obtain)


def selected_by_category() -> dict[str, list[FieldSpec]]:
    """Selected fields grouped by Table-1 category, category order preserved."""
    out: dict[str, list[FieldSpec]] = {c: [] for c in CATEGORIES}
    for f in SELECTED_FIELDS:
        assert f.category is not None
        out[f.category].append(f)
    return out
