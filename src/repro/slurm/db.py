"""An accounting database standing in for slurmdbd.

:class:`AccountingDB` holds finished :class:`JobRecord`\\ s sorted by
submit time and answers the date-range queries the *Obtain data* stage
issues (``sacct -S <start> -E <end>``).  Query results are emitted as
sacct pipe text through a :class:`~repro.slurm.emit.SacctEmitter`, so the
rest of the pipeline is exercised on exactly the bytes a real system
would produce.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro._util.errors import ConfigError
from repro._util.timefmt import month_bounds
from repro.slurm.emit import SacctEmitter
from repro.slurm.records import JobRecord

__all__ = ["AccountingDB"]


class AccountingDB:
    """In-memory job accounting store with date-range queries.

    Jobs are indexed by submit time.  A query returns every job *submitted*
    in ``[start, end)`` — the same semantics the paper's monthly data pulls
    rely on (a job belongs to the month it entered the queue).
    """

    def __init__(self, cluster: str = "cluster") -> None:
        self.cluster = cluster
        self._jobs: list[JobRecord] = []
        self._submits: list[int] = []
        self._sorted = True
        # the Obtain stage queries one shared DB from a worker pool;
        # the lazy sort must not run under a concurrent bisect
        self._sort_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._jobs)

    def _add_locked(self, job: JobRecord) -> None:
        self._jobs.append(job)
        self._sorted = False

    def add(self, job: JobRecord) -> None:
        with self._sort_lock:
            self._add_locked(job)

    def extend(self, jobs: Iterable[JobRecord]) -> None:
        # one acquisition for the whole batch (the Lock is not reentrant)
        with self._sort_lock:
            for job in jobs:
                self._add_locked(job)

    def _ensure_sorted(self) -> None:
        with self._sort_lock:
            if not self._sorted:
                self._jobs.sort(key=lambda j: (j.submit, j.jobid))
                self._submits = [j.submit for j in self._jobs]
                self._sorted = True
            elif len(self._submits) != len(self._jobs):
                self._submits = [j.submit for j in self._jobs]

    @property
    def jobs(self) -> list[JobRecord]:
        """All jobs, sorted by submit time."""
        self._ensure_sorted()
        return self._jobs

    # -- queries -------------------------------------------------------------

    def query(self, start: int, end: int) -> list[JobRecord]:
        """Jobs submitted in ``[start, end)`` (epoch seconds)."""
        if end < start:
            raise ConfigError(f"query end {end} precedes start {start}")
        self._ensure_sorted()
        lo = bisect.bisect_left(self._submits, start)
        hi = bisect.bisect_left(self._submits, end)
        return self._jobs[lo:hi]

    def query_month(self, month: str) -> list[JobRecord]:
        """Jobs submitted in a ``YYYY-MM`` month."""
        start, end = month_bounds(month)
        return self.query(start, end)

    def months(self) -> list[str]:
        """The sorted list of months with at least one submission."""
        self._ensure_sorted()
        seen: dict[str, None] = {}
        from repro._util.timefmt import format_timestamp
        for job in self._jobs:
            seen.setdefault(format_timestamp(job.submit)[:7])
        return sorted(seen)

    def iter_steps(self) -> Iterator:
        for job in self.jobs:
            yield from job.steps

    def n_steps(self) -> int:
        return sum(len(j.steps) for j in self._jobs)

    # -- sacct-shaped output -------------------------------------------------

    def dump_sacct(self, path: str | os.PathLike, start: int, end: int,
                   fields: Sequence[str] | None = None,
                   include_steps: bool = True,
                   malformed_rate: float = 0.0,
                   rng: np.random.Generator | None = None) -> int:
        """Write the query result as sacct pipe text; returns row count."""
        emitter = SacctEmitter(fields=fields, include_steps=include_steps,
                               malformed_rate=malformed_rate, rng=rng)
        return emitter.write(self.query(start, end), str(path))

    def dump_sacct_month(self, path: str | os.PathLike, month: str,
                         **kwargs) -> int:
        start, end = month_bounds(month)
        return self.dump_sacct(path, start, end, **kwargs)
