"""In-memory job and job-step accounting records.

These are the objects the scheduler simulator (:mod:`repro.sched`)
produces and the emitter (:mod:`repro.slurm.emit`) serializes.  Field
names follow the curated catalog (:mod:`repro.slurm.fields`); values are
typed (ints/epoch seconds) rather than Slurm text — formatting quirks live
entirely in the emitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro._util.errors import DataError
from repro._util.timefmt import UNKNOWN_TIME

__all__ = ["JobRecord", "StepRecord", "JOB_STATES", "STEP_STATES",
           "TERMINAL_STATES", "check_job_invariants"]

#: Final job states the paper's figures color by, plus NODE_FAIL which
#: appears as the malformed/hardware-error tail in the dataset section.
JOB_STATES = (
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "TIMEOUT",
    "OUT_OF_MEMORY",
    "NODE_FAIL",
)

STEP_STATES = ("COMPLETED", "FAILED", "CANCELLED", "OUT_OF_MEMORY")

TERMINAL_STATES = frozenset(JOB_STATES)


@dataclass
class StepRecord:
    """One job step (an ``srun`` launch inside a job)."""

    jobid: int
    stepid: int                  # 0-based within the job
    name: str = "step"
    start: int = UNKNOWN_TIME    # epoch seconds
    end: int = UNKNOWN_TIME
    state: str = "COMPLETED"
    exit_code: int = 0
    ntasks: int = 1
    nnodes: int = 1
    layout: str = "Block"
    ave_cpu_s: int = 0           # average per-task CPU seconds
    max_rss_kib: int = 0
    ave_disk_read_b: int = 0
    ave_disk_write_b: int = 0
    max_disk_read_b: int = 0
    max_disk_write_b: int = 0

    @property
    def step_jobid(self) -> str:
        """The sacct-style ``<jobid>.<step>`` identifier."""
        return f"{self.jobid}.{self.stepid}"

    @property
    def elapsed(self) -> int:
        if self.start == UNKNOWN_TIME or self.end == UNKNOWN_TIME:
            return 0
        return max(0, self.end - self.start)


@dataclass
class JobRecord:
    """One batch job, with the accounting fields the workflow curates."""

    jobid: int
    user: str
    account: str
    partition: str
    qos: str = "normal"
    cluster: str = "cluster"
    job_name: str = "job"

    # Timing (epoch seconds; UNKNOWN_TIME when not applicable)
    submit: int = 0
    eligible: int = 0
    start: int = UNKNOWN_TIME
    end: int = UNKNOWN_TIME
    timelimit_s: int = 3600           # requested wall time
    suspended_s: int = 0

    # Resources
    nnodes: int = 1
    ncpus: int = 1
    ntasks: int = 1
    req_mem_kib: int = 0
    req_mem_per: str = "n"
    req_gres: str = ""                # e.g. "gpu:8"
    node_list: str = ""
    consumed_energy_j: int = 0

    # Outcome
    state: str = "COMPLETED"
    exit_code: int = 0
    exit_signal: int = 0
    reason: str = "None"
    restarts: int = 0
    constraints: str = ""

    # Scheduling metadata
    priority: int = 0
    backfilled: bool = False
    dependency: str = ""
    array_job_id: int | None = None
    reservation: str = ""
    reservation_id: str = ""

    # Usage
    total_cpu_s: int = 0
    user_cpu_s: int = 0
    system_cpu_s: int = 0
    max_rss_kib: int = 0
    ave_rss_kib: int = 0
    max_vmsize_kib: int = 0
    ave_cpu_s: int = 0
    work_dir: str = "/lustre/orion"
    ave_disk_read_b: int = 0
    ave_disk_write_b: int = 0
    max_disk_read_b: int = 0
    max_disk_write_b: int = 0

    comment: str = ""
    system_comment: str = ""
    admin_comment: str = ""

    steps: list[StepRecord] = dc_field(default_factory=list)

    # -- derived quantities the analytics layer uses --------------------------

    @property
    def elapsed(self) -> int:
        """Wall-clock runtime in seconds (0 if never started)."""
        if self.start == UNKNOWN_TIME or self.end == UNKNOWN_TIME:
            return 0
        return max(0, self.end - self.start)

    @property
    def wait_s(self) -> int:
        """Queue wait: eligible (or submit) → start.

        Jobs cancelled before starting wait from submit to end.
        """
        anchor = self.eligible if self.eligible != UNKNOWN_TIME else self.submit
        if self.start == UNKNOWN_TIME:
            return max(0, (self.end if self.end != UNKNOWN_TIME else anchor) - anchor)
        return max(0, self.start - anchor)

    @property
    def flags(self) -> str:
        """Slurm ``Flags`` text; contains ``BackFill`` when backfilled."""
        parts = []
        if self.backfilled:
            parts.append("SchedBackfill")
        else:
            parts.append("SchedMain")
        if self.array_job_id is not None:
            parts.append("ArrayJob")
        return ",".join(parts)


def check_job_invariants(job: JobRecord) -> None:
    """Raise :class:`DataError` when a record violates accounting laws.

    Used by tests and by the simulator's sanity sink:
    submit <= eligible <= start <= end, legal state, step nesting.
    """
    if job.state not in TERMINAL_STATES:
        raise DataError(f"job {job.jobid}: illegal state {job.state!r}")
    if job.eligible != UNKNOWN_TIME and job.eligible < job.submit:
        raise DataError(f"job {job.jobid}: eligible before submit")
    if job.start != UNKNOWN_TIME:
        anchor = job.eligible if job.eligible != UNKNOWN_TIME else job.submit
        if job.start < anchor:
            raise DataError(f"job {job.jobid}: started before eligible")
        if job.end != UNKNOWN_TIME and job.end < job.start:
            raise DataError(f"job {job.jobid}: ended before start")
    if job.state == "CANCELLED" and job.start == UNKNOWN_TIME:
        pass  # cancelled while pending: no start is legal
    elif job.start == UNKNOWN_TIME:
        raise DataError(
            f"job {job.jobid}: state {job.state} requires a start time")
    if job.nnodes < 1 or job.ncpus < 1:
        raise DataError(f"job {job.jobid}: non-positive allocation")
    for step in job.steps:
        if step.jobid != job.jobid:
            raise DataError(f"step {step.step_jobid} not owned by {job.jobid}")
        if job.start != UNKNOWN_TIME and step.start != UNKNOWN_TIME:
            if step.start < job.start:
                raise DataError(f"step {step.step_jobid} starts before job")
            if job.end != UNKNOWN_TIME and step.end != UNKNOWN_TIME \
                    and step.end > job.end:
                raise DataError(f"step {step.step_jobid} ends after job")
        if step.nnodes > job.nnodes:
            raise DataError(
                f"step {step.step_jobid} uses more nodes than the job")
