"""The ``repro-sacct`` command: sacct over a synthetic trace.

Synthesizes (or reuses, via ``--cache``) a month of accounting data for a
system profile and prints it exactly as ``sacct -P --format=...`` would —
useful for demos and for piping into external tooling.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro._util.errors import ReproError
from repro.sched import SimConfig, simulate_month
from repro.slurm.db import AccountingDB
from repro.slurm.emit import SacctEmitter
from repro.slurm.fields import OBTAIN_FIELDS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-sacct",
        description="sacct-style dump of a synthetic Slurm trace")
    p.add_argument("--system", default="frontier",
                   choices=["frontier", "andes", "testsys"])
    p.add_argument("--month", default="2024-03", help="YYYY-MM")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--rate-scale", type=float, default=0.02)
    p.add_argument("--format", dest="fields", default=None,
                   help="comma-separated field list (default: the "
                        "60-field Obtain set)")
    p.add_argument("--no-steps", action="store_true",
                   help="omit job-step rows")
    p.add_argument("--limit", type=int, default=None,
                   help="print at most N rows")
    p.add_argument("-o", "--output", default=None,
                   help="write to a file instead of stdout")
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        result = simulate_month(args.system, args.month, seed=args.seed,
                                rate_scale=args.rate_scale,
                                config=SimConfig(seed=args.seed))
        db = AccountingDB(args.system)
        db.extend(result.jobs)
        fields = (args.fields.split(",") if args.fields
                  else [f.name for f in OBTAIN_FIELDS])
        emitter = SacctEmitter(fields=fields,
                               include_steps=not args.no_steps)
        out = open(args.output, "w") if args.output else sys.stdout
        try:
            print(emitter.header(), file=out)
            for i, row in enumerate(emitter.rows(db.jobs)):
                if args.limit is not None and i >= args.limit:
                    break
                print(row, file=out)
        finally:
            if args.output:
                out.close()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
