"""sacct-style text emission.

:class:`SacctEmitter` turns :class:`~repro.slurm.records.JobRecord` and
:class:`~repro.slurm.records.StepRecord` objects into the pipe-separated
rows ``sacct -P --format=...`` prints, reproducing the formatting quirks
the paper's curation stage has to undo:

- node/CPU counts carry a ``K`` suffix at >= 1000 (``9.408K``),
- durations print as ``[DD-]HH:MM:SS``,
- timestamps print as ``YYYY-MM-DDTHH:MM:SS`` with ``Unknown`` sentinels,
- memory prints as ``ReqMem`` text (``512Gn``),
- exit codes print as ``code:signal``,
- step rows (``JobID = <id>.<step>``) leave job-level columns blank.

The emitter can also inject *malformed* rows (truncated mid-record) at a
configurable rate, modelling the "malformed records, mostly associated
with hardware errors, accounting for less than 0.002% of the total" that
the curation stage discards.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro._util.errors import ConfigError
from repro._util.sizefmt import format_count_k, format_mem
from repro._util.timefmt import format_slurm_duration, format_timestamp
from repro.slurm.fields import OBTAIN_FIELDS, FIELDS_BY_NAME, FieldSpec
from repro.slurm.records import JobRecord, StepRecord

__all__ = ["SacctEmitter", "DEFAULT_MALFORMED_RATE"]

#: The paper reports malformed records at "less than 0.002%".
DEFAULT_MALFORMED_RATE = 1.5e-5


def _stable_id(name: str, base: int = 10000, span: int = 50000) -> int:
    """Deterministic fake UID/GID from a name."""
    h = 0
    for ch in name:
        h = (h * 131 + ord(ch)) % 1_000_003
    return base + h % span


def _tres_req(job: JobRecord) -> str:
    parts = [f"cpu={job.ncpus}", f"mem={format_mem(job.req_mem_kib, per='')}",
             f"node={job.nnodes}"]
    if job.req_gres:
        parts.append(f"gres/{job.req_gres}")
    return ",".join(parts)


def _tres_usage(job: JobRecord) -> str:
    return (f"cpu={format_slurm_duration(job.ave_cpu_s)},"
            f"mem={job.ave_rss_kib}K")


#: job-level extractors, one per obtain field name.
_JOB_GETTERS: dict[str, Callable[[JobRecord], object]] = {
    "JobID": lambda j: (f"{j.array_job_id}_{j.jobid}"
                        if j.array_job_id is not None else str(j.jobid)),
    "Partition": lambda j: j.partition,
    "Reservation": lambda j: j.reservation,
    "ReservationID": lambda j: j.reservation_id,
    "SubmitTime": lambda j: format_timestamp(j.submit),
    "StartTime": lambda j: format_timestamp(j.start),
    "EndTime": lambda j: format_timestamp(j.end),
    "Elapsed": lambda j: format_slurm_duration(j.elapsed),
    "Timelimit": lambda j: format_slurm_duration(j.timelimit_s),
    "NNodes": lambda j: format_count_k(j.nnodes),
    "NCPUs": lambda j: format_count_k(j.ncpus),
    "NTasks": lambda j: format_count_k(j.ntasks),
    "ReqMem": lambda j: format_mem(j.req_mem_kib, per=j.req_mem_per),
    "ReqGRES": lambda j: j.req_gres,
    "Layout": lambda j: "",
    "VMSize": lambda j: str(j.max_vmsize_kib * 1024),
    "AveCPU": lambda j: format_slurm_duration(j.ave_cpu_s),
    "MaxRSS": lambda j: f"{j.max_rss_kib}K",
    "TotalCPU": lambda j: format_slurm_duration(j.total_cpu_s),
    "NodeList": lambda j: j.node_list,
    "ConsumedEnergy": lambda j: str(j.consumed_energy_j),
    "WorkDir": lambda j: j.work_dir,
    "AveDiskRead": lambda j: str(j.ave_disk_read_b),
    "AveDiskWrite": lambda j: str(j.ave_disk_write_b),
    "MaxDiskRead": lambda j: str(j.max_disk_read_b),
    "MaxDiskWrite": lambda j: str(j.max_disk_write_b),
    "State": lambda j: j.state,
    "ExitCode": lambda j: f"{j.exit_code}:{j.exit_signal}",
    "Reason": lambda j: j.reason,
    "Suspended": lambda j: format_slurm_duration(j.suspended_s),
    "Restarts": lambda j: str(j.restarts),
    "Constraints": lambda j: j.constraints,
    "Priority": lambda j: str(j.priority),
    "Eligible": lambda j: format_timestamp(j.eligible),
    "QOS": lambda j: j.qos,
    "QOSReq": lambda j: j.qos,
    "Flags": lambda j: j.flags,
    "TRESUsageInAve": _tres_usage,
    "TRESReq": _tres_req,
    "Backfill": lambda j: "1" if j.backfilled else "0",
    "Dependency": lambda j: j.dependency,
    "ArrayJobID": lambda j: ("" if j.array_job_id is None
                             else str(j.array_job_id)),
    "Comment": lambda j: j.comment,
    "SystemComment": lambda j: j.system_comment,
    "AdminComment": lambda j: j.admin_comment,
    "User": lambda j: j.user,
    "UID": lambda j: str(_stable_id(j.user)),
    "Account": lambda j: j.account,
    "Cluster": lambda j: j.cluster,
    "JobName": lambda j: j.job_name,
    "Group": lambda j: j.account,
    "GID": lambda j: str(_stable_id(j.account, base=5000)),
    "AllocNodes": lambda j: format_count_k(j.nnodes),
    "AllocCPUS": lambda j: format_count_k(j.ncpus),
    "ReqNodes": lambda j: format_count_k(j.nnodes),
    "ReqCPUS": lambda j: format_count_k(j.ncpus),
    "SystemCPU": lambda j: format_slurm_duration(j.system_cpu_s),
    "UserCPU": lambda j: format_slurm_duration(j.user_cpu_s),
    "AveRSS": lambda j: f"{j.ave_rss_kib}K",
    "ExitSignal": lambda j: str(j.exit_signal),
}

#: step-level extractors; fields absent here emit blank on step rows,
#: matching sacct's behaviour for job-only columns.
_STEP_GETTERS: dict[str, Callable[[StepRecord], object]] = {
    "JobID": lambda s: s.step_jobid,
    "StartTime": lambda s: format_timestamp(s.start),
    "EndTime": lambda s: format_timestamp(s.end),
    "Elapsed": lambda s: format_slurm_duration(s.elapsed),
    "NNodes": lambda s: format_count_k(s.nnodes),
    "NTasks": lambda s: format_count_k(s.ntasks),
    "Layout": lambda s: s.layout,
    "AveCPU": lambda s: format_slurm_duration(s.ave_cpu_s),
    "MaxRSS": lambda s: f"{s.max_rss_kib}K",
    "State": lambda s: s.state,
    "ExitCode": lambda s: f"{s.exit_code}:0",
    "JobName": lambda s: s.name,
    "AveDiskRead": lambda s: str(s.ave_disk_read_b),
    "AveDiskWrite": lambda s: str(s.ave_disk_write_b),
    "MaxDiskRead": lambda s: str(s.max_disk_read_b),
    "MaxDiskWrite": lambda s: str(s.max_disk_write_b),
}


class SacctEmitter:
    """Format job/step records as ``sacct -P`` pipe-separated text.

    Parameters
    ----------
    fields:
        Field names to emit, default the full 60-field Obtain set.
    include_steps:
        Emit a row per job step after each job row (sacct default).
    malformed_rate:
        Probability that a row is truncated mid-field, modelling the
        hardware-error records the paper's curation discards.  Requires
        ``rng`` when nonzero.
    """

    def __init__(self, fields: Sequence[str] | None = None,
                 include_steps: bool = True,
                 malformed_rate: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        names = list(fields) if fields is not None else [
            f.name for f in OBTAIN_FIELDS]
        unknown = [n for n in names if n not in FIELDS_BY_NAME]
        if unknown:
            raise ConfigError(f"unknown sacct fields: {unknown}")
        self.fields: list[FieldSpec] = [FIELDS_BY_NAME[n] for n in names]
        self.names = [f.name for f in self.fields]
        self.include_steps = include_steps
        if malformed_rate and rng is None:
            raise ConfigError("malformed_rate requires an rng")
        if not 0.0 <= malformed_rate < 1.0:
            raise ConfigError(f"bad malformed_rate {malformed_rate}")
        self.malformed_rate = malformed_rate
        self.rng = rng

    # -- row production ---------------------------------------------------------

    def header(self) -> str:
        return "|".join(self.names)

    def job_row(self, job: JobRecord) -> str:
        return "|".join(str(_JOB_GETTERS[n](job)) if n in _JOB_GETTERS else ""
                        for n in self.names)

    def step_row(self, step: StepRecord) -> str:
        return "|".join(str(_STEP_GETTERS[n](step)) if n in _STEP_GETTERS else ""
                        for n in self.names)

    def _maybe_corrupt(self, row: str) -> str:
        if self.malformed_rate and self.rng is not None \
                and self.rng.random() < self.malformed_rate:
            # Truncate at a random interior position: field count now wrong.
            cut = int(self.rng.integers(1, max(2, row.count("|"))))
            return "|".join(row.split("|")[:cut])
        return row

    def rows(self, jobs: Iterable[JobRecord]) -> Iterator[str]:
        """Yield formatted rows for jobs (and their steps)."""
        for job in jobs:
            yield self._maybe_corrupt(self.job_row(job))
            if self.include_steps:
                for step in job.steps:
                    yield self._maybe_corrupt(self.step_row(step))

    def write(self, jobs: Iterable[JobRecord], path: str) -> int:
        """Write header + rows to ``path``; returns the row count."""
        import os
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        count = 0
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.header() + "\n")
            for row in self.rows(jobs):
                fh.write(row + "\n")
                count += 1
        return count
