"""Slurm accounting substrate.

This package models the parts of Slurm's accounting stack the paper's
workflow touches:

- :mod:`repro.slurm.fields` — the accounting field catalog (118 fields)
  and the curated Table-1 subset the workflow selects;
- :mod:`repro.slurm.records` — in-memory job and job-step records as the
  simulator produces them;
- :mod:`repro.slurm.emit` — ``sacct -P``-style pipe-separated text
  emission, including the unit quirks the curation stage must handle;
- :mod:`repro.slurm.parse` — the reverse direction: text → typed values;
- :mod:`repro.slurm.db` — an accounting "database" queryable by date
  range, standing in for slurmdbd;
- :mod:`repro.slurm.cli` — a small ``sacct``-flavoured CLI over the db.
"""

from repro.slurm.fields import (
    FieldSpec,
    ALL_FIELDS,
    FIELDS_BY_NAME,
    SELECTED_FIELDS,
    OBTAIN_FIELDS,
    CATEGORIES,
    selected_by_category,
)
from repro.slurm.records import JobRecord, StepRecord, JOB_STATES, STEP_STATES
from repro.slurm.emit import SacctEmitter
from repro.slurm.parse import parse_sacct_value, record_from_row
from repro.slurm.db import AccountingDB

__all__ = [
    "FieldSpec",
    "ALL_FIELDS",
    "FIELDS_BY_NAME",
    "SELECTED_FIELDS",
    "OBTAIN_FIELDS",
    "CATEGORIES",
    "selected_by_category",
    "JobRecord",
    "StepRecord",
    "JOB_STATES",
    "STEP_STATES",
    "SacctEmitter",
    "parse_sacct_value",
    "record_from_row",
    "AccountingDB",
]
