"""Parsing sacct text back into typed values.

The curation stage (:mod:`repro.pipeline.curate`) uses these converters
to normalize raw sacct output: K-suffixed counts become integers,
durations become seconds, timestamps become epoch seconds, and so on —
exactly the "light preprocessing step ... to normalize and clean the
extracted data" from Section 2.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from repro._util.errors import DataError
from repro._util.sizefmt import parse_count_k, parse_mem
from repro._util.timefmt import parse_slurm_duration, parse_timestamp
from repro.slurm.fields import FIELDS_BY_NAME

__all__ = ["parse_sacct_value", "record_from_row", "is_step_jobid"]


def _parse_exitcode(text: str) -> int:
    """Return the exit status portion of ``code:signal``."""
    if not text:
        return 0
    head = text.split(":", 1)[0]
    try:
        return int(head)
    except ValueError as exc:
        raise DataError(f"bad exit code: {text!r}") from exc


def _parse_bytes(text: str) -> int:
    """Byte counts: plain ints, or suffixed KiB values like ``12345K``."""
    text = text.strip()
    if not text:
        return 0
    if text[-1] in ("K", "M", "G", "T"):
        kib, _ = parse_mem(text)
        return kib * 1024
    try:
        return int(float(text))
    except ValueError as exc:
        raise DataError(f"bad byte count: {text!r}") from exc


_PARSERS: dict[str, Callable[[str], Any]] = {
    "str": lambda t: t,
    "int": lambda t: int(t) if t.strip() else 0,
    "float": lambda t: float(t) if t.strip() else 0.0,
    "count": lambda t: parse_count_k(t) if t.strip() else 0,
    "duration": lambda t: parse_slurm_duration(t) if t.strip() else 0,
    "timestamp": parse_timestamp,
    "mem": lambda t: parse_mem(t)[0] if t.strip() else 0,
    "bytes": _parse_bytes,
    "exitcode": _parse_exitcode,
    "tres": lambda t: t,
}


def parse_sacct_value(field_name: str, text: str) -> Any:
    """Parse one sacct cell according to its field's kind.

    >>> parse_sacct_value("NNodes", "9.408K")
    9408
    >>> parse_sacct_value("Elapsed", "1-00:00:00")
    86400
    """
    spec = FIELDS_BY_NAME.get(field_name)
    if spec is None:
        raise DataError(f"unknown sacct field {field_name!r}")
    return _PARSERS[spec.kind](text)


def is_step_jobid(jobid_text: str) -> bool:
    """True when a JobID cell denotes a job step (``123.0``, ``123.batch``)."""
    return "." in jobid_text


def record_from_row(names: Sequence[str], cells: Sequence[str]) -> dict[str, Any]:
    """Parse one sacct row into a dict of typed values.

    Raises :class:`DataError` on arity mismatch or unparseable cells —
    the curation stage catches this to count/drop malformed records.
    """
    if len(names) != len(cells):
        raise DataError(
            f"row has {len(cells)} cells for {len(names)} fields")
    out: dict[str, Any] = {}
    for name, cell in zip(names, cells):
        out[name] = parse_sacct_value(name, cell)
    return out


def curate_row(row: Mapping[str, Any]) -> dict[str, Any]:
    """Apply Table-1 style normalizations to an already-typed row.

    Converts raw seconds to minutes for the readability-oriented derived
    columns the paper mentions, and derives ``Backfill`` from ``Flags``
    when the explicit column is absent.
    """
    out = dict(row)
    if "Elapsed" in out:
        out["ElapsedMin"] = round(out["Elapsed"] / 60.0, 2)
    if "Timelimit" in out:
        out["TimelimitMin"] = round(out["Timelimit"] / 60.0, 2)
    if "Backfill" not in out and "Flags" in out:
        out["Backfill"] = int("SchedBackfill" in str(out["Flags"]))
    return out
