"""The ``repro-serve`` command: serve finished workdirs over HTTP.

::

    repro-workflow --workdir out/ --system testsys --dates 2024-01
    repro-serve --workdir out/ --port 8080

then::

    curl localhost:8080/api/runs
    curl localhost:8080/api/artifacts/2024-01-jobs -H 'Accept: application/json'
    curl localhost:8080/api/charts/volume.svg
    curl localhost:8080/metrics

The default transport is the ``selectors`` event loop (``--transport
loop``); ``--transport thread`` keeps the legacy thread-per-connection
server.  ``--procs N`` forks N event-loop shards sharing the port via
``SO_REUSEPORT`` — each shard is a full process with its own
``/metrics`` (labelled ``shard="i"``).  ``--ingest-dir`` opens the
write path (``POST /api/runs``); ``--rate-limit R`` answers 429 once a
client exceeds R requests/second.

``SIGTERM``/``SIGINT`` trigger a graceful drain: stop accepting,
in-flight requests finish, queued background jobs complete, then the
process (or every shard) exits.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from repro._util.errors import ReproError
from repro.serve.api import ServeApp
from repro.serve.limit import RateLimiter
from repro.serve.loop import EventLoopServer
from repro.serve.server import ServeServer
from repro.serve.shard import run_sharded

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-serve",
        description="HTTP service over repro-workflow output "
                    "directories")
    p.add_argument("--workdir", action="append", required=True,
                   help="a finished workflow workdir to serve "
                        "(repeatable)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--transport", choices=("loop", "thread"),
                   default="loop",
                   help="event-loop transport (default) or the legacy "
                        "thread-per-connection server")
    p.add_argument("--procs", type=int, default=1,
                   help="fork N SO_REUSEPORT shards of the event-loop "
                        "transport (1 = in-process, no fork)")
    p.add_argument("--handler-threads", type=int, default=8,
                   help="event-loop dispatch worker pool size")
    p.add_argument("--rate-limit", type=float, default=None,
                   metavar="RPS",
                   help="per-client token-bucket rate (requests/s; "
                        "excess answered 429 + Retry-After)")
    p.add_argument("--ingest-dir", default=None, metavar="DIR",
                   help="enable POST /api/runs: verified ingested "
                        "runs are committed under DIR and served "
                        "immediately")
    p.add_argument("--job-workers", type=int, default=2,
                   help="background worker pool size")
    p.add_argument("--job-capacity", type=int, default=8,
                   help="bounded job queue depth (full -> 429)")
    p.add_argument("--cache-entries", type=int, default=128,
                   help="response LRU entry bound")
    p.add_argument("--cache-mb", type=int, default=64,
                   help="response LRU payload bound (MiB)")
    p.add_argument("--timeout", type=float, default=30.0,
                   help="per-request handler timeout in seconds "
                        "(0 disables)")
    p.add_argument("--max-body-kb", type=int, default=1024,
                   help="request body limit (KiB; larger -> 413; "
                        "POST /api/runs has its own archive cap)")
    p.add_argument("--llm-backend", default="chart-analyst",
                   help="backend for POST /api/insights jobs")
    p.add_argument("--fabric", nargs="?", const="auto", default=None,
                   metavar="DB",
                   help="enqueue POST jobs into the durable fabric "
                        "store instead of the in-memory queue "
                        "(default DB: <first workdir>/.store/"
                        "fabric.sqlite3; run repro-launcher to "
                        "execute them)")
    p.add_argument("--verbose", action="store_true",
                   help="log each request to stderr")
    return p


def _build_app(args, fabric) -> ServeApp:
    return ServeApp(
        args.workdir,
        llm_backend=args.llm_backend,
        cache_entries=args.cache_entries,
        cache_bytes=args.cache_mb * 1024 * 1024,
        job_workers=args.job_workers,
        job_capacity=args.job_capacity,
        request_timeout_s=args.timeout or None,
        max_body_bytes=args.max_body_kb * 1024,
        ingest_dir=args.ingest_dir,
        fabric=fabric)


def _build_server(args, fabric, sock=None):
    app = _build_app(args, fabric)
    if args.transport == "thread":
        if sock is not None:
            raise ReproError("--procs sharding needs the event-loop "
                             "transport")
        return app, ServeServer(app, host=args.host, port=args.port,
                                verbose=args.verbose)
    limiter = None if args.rate_limit is None \
        else RateLimiter(args.rate_limit)
    return app, EventLoopServer(
        app, host=args.host, port=args.port, sock=sock,
        handler_threads=args.handler_threads,
        rate_limit=limiter, verbose=args.verbose)


def _serve_until_signal(app, server, banner: str) -> int:
    stop = threading.Event()

    def request_shutdown(signum, frame) -> None:   # pragma: no cover
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)
    print(banner)
    server.start()
    try:
        while not stop.wait(timeout=0.2):   # pragma: no cover - signal loop
            pass
    finally:
        print("repro-serve: draining...", file=sys.stderr)
        clean = server.close(graceful=True)
        print(f"repro-serve: {'clean' if clean else 'forced'} shutdown",
              file=sys.stderr)
    return 0 if clean else 1


def _shard_main(args, fabric, shard: int, sock) -> int:
    """Runs inside one forked shard (its own process, app, metrics)."""
    app, server = _build_server(args, fabric, sock=sock)
    app.shard = str(shard)
    return _serve_until_signal(
        app, server, f"repro-serve: shard {shard} on "
                     f"http://{args.host}:{sock.getsockname()[1]}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    fabric = args.fabric
    if fabric == "auto":
        from repro.fabric import fabric_db_path
        fabric = fabric_db_path(args.workdir[0])
    if args.procs < 1:
        print("error: --procs must be >= 1", file=sys.stderr)
        return 2

    if args.procs > 1:
        if args.transport != "loop":
            print("error: --procs sharding needs --transport loop",
                  file=sys.stderr)
            return 2
        try:
            return run_sharded(
                args.procs, args.host, args.port,
                lambda shard, sock: _shard_main(args, fabric, shard,
                                                sock),
                on_ready=lambda host, port, pids: print(
                    f"repro-serve: {args.procs} shards on "
                    f"http://{host}:{port} (pids {pids})"))
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    try:
        app, server = _build_server(args, fabric)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    host, port = server.address
    runs = ", ".join(r.basename for r in app.registry.runs)
    mode = f"fabric {fabric}" if fabric else \
        f"jobs: {args.job_workers} workers, queue {args.job_capacity}"
    return _serve_until_signal(
        app, server,
        f"repro-serve: {runs} on http://{host}:{port} "
        f"({args.transport} transport; {mode})")


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
