"""``POST /api/runs``: hash-verified ingest of a completed workdir.

The write path accepts a tar archive of a finished workflow workdir
and commits it to the registry only after every artifact listed in the
archive's ``provenance.json`` has been re-hashed on the server and
matched against its recorded content hash (the same streaming SHA-256
:mod:`repro.store.hashing` computes when the ledger is written).  A
tampered, truncated, or incomplete archive is rejected with a
structured error and leaves nothing behind: extraction happens in a
dot-prefixed temp directory inside the ingest dir (dot-prefixed names
are invisible to :meth:`RunRegistry.refresh`), and only a fully
verified run is renamed — atomically, same filesystem — to its final
name and hot-registered.  Sibling shards pick the new directory up via
their own registry refresh; no restart anywhere.

Archive rules: plain files and directories only (symlinks, hardlinks,
and device nodes are rejected — an archive must not be able to alias
files outside its own root), no absolute paths, no ``..``.  The run
root may be the archive root or a single shared top-level directory.
"""

from __future__ import annotations

import io
import json
import os
import posixpath
import shutil
import tarfile
import uuid

from repro.obs.context import MANIFEST_PROVENANCE, MANIFEST_SUMMARY
from repro.serve.router import ServeError
from repro.store.hashing import file_sha256

__all__ = ["ingest_run"]

#: decompressed-size guard: a tiny compressed body must not be able to
#: expand into an arbitrarily large extraction (zip-bomb containment)
_MAX_EXTRACTED_BYTES = 1024 * 1024 * 1024


def _member_relpath(member: tarfile.TarInfo) -> str | None:
    """Run-root-relative posix path for one member; ``None`` for the
    archive root itself; :class:`ServeError` (400) for anything that
    could write outside the extraction root."""
    if member.issym() or member.islnk():
        raise ServeError(400, f"archive member {member.name!r} is a "
                              "link; only plain files and directories "
                              "are ingestable")
    if not (member.isreg() or member.isdir()):
        raise ServeError(400, f"archive member {member.name!r} has an "
                              "unsupported type")
    name = posixpath.normpath(member.name.lstrip("/"))
    if name in (".", ""):
        return None
    if name.startswith("..") or posixpath.isabs(name):
        raise ServeError(400, f"archive member {member.name!r} "
                              "escapes the run root")
    return name


def _extract(body: bytes, tmp_root: str) -> int:
    """Unpack ``body`` into ``tmp_root``; returns extracted bytes."""
    try:
        archive = tarfile.open(fileobj=io.BytesIO(body), mode="r:*")
    except tarfile.TarError as exc:
        raise ServeError(400, f"body is not a readable tar archive: "
                              f"{exc}") from None
    total = 0
    with archive:
        for member in archive:
            rel = _member_relpath(member)
            if rel is None:
                continue
            dest = os.path.join(tmp_root, *rel.split("/"))
            if member.isdir():
                os.makedirs(dest, exist_ok=True)
                continue
            total += member.size
            if total > _MAX_EXTRACTED_BYTES:
                raise ServeError(413, "archive expands past "
                                      f"{_MAX_EXTRACTED_BYTES} bytes")
            os.makedirs(os.path.dirname(dest), exist_ok=True)
            src = archive.extractfile(member)
            if src is None:             # pragma: no cover - defensive
                raise ServeError(400, f"unreadable archive member "
                                      f"{member.name!r}")
            with src, open(dest, "wb") as out:
                shutil.copyfileobj(src, out)
    return total


def _locate_root(tmp_root: str) -> str:
    """The run root inside the extraction: the archive root when the
    manifest sits there, else a single shared top-level directory."""
    if os.path.isfile(os.path.join(tmp_root, MANIFEST_SUMMARY)):
        return tmp_root
    entries = os.listdir(tmp_root)
    if len(entries) == 1:
        candidate = os.path.join(tmp_root, entries[0])
        if os.path.isfile(os.path.join(candidate, MANIFEST_SUMMARY)):
            return candidate
    raise ServeError(422, f"archive has no {MANIFEST_SUMMARY} at its "
                          "root; is this a finished workflow workdir?")


def _verify(root: str) -> int:
    """Re-hash every provenance-listed artifact; count of verified
    records, or :class:`ServeError` (422) naming the first failure."""
    prov_path = os.path.join(root, MANIFEST_PROVENANCE)
    try:
        with open(prov_path, encoding="utf-8") as fh:
            provenance = json.load(fh)
    except OSError:
        raise ServeError(422, f"archive has no {MANIFEST_PROVENANCE}; "
                              "unverifiable runs are not ingestable") \
            from None
    except ValueError as exc:
        raise ServeError(422, f"malformed {MANIFEST_PROVENANCE}: "
                              f"{exc}") from None
    records = provenance.get("artifacts")
    if not isinstance(records, list):
        raise ServeError(422, f"{MANIFEST_PROVENANCE} has no "
                              "artifacts list")
    for record in records:
        rel = record.get("path") if isinstance(record, dict) else None
        expected = record.get("sha256") if isinstance(record, dict) \
            else None
        if not rel or not expected:
            raise ServeError(422, "provenance record without "
                                  f"path/sha256: {record!r}")
        norm = posixpath.normpath(rel)
        if norm.startswith("..") or posixpath.isabs(norm):
            raise ServeError(422, f"provenance path {rel!r} escapes "
                                  "the run root")
        path = os.path.join(root, *norm.split("/"))
        if not os.path.isfile(path):
            raise ServeError(422, f"artifact {rel!r} is listed in "
                                  "provenance but missing from the "
                                  "archive")
        actual = file_sha256(path)
        if actual != expected:
            raise ServeError(422, f"artifact {rel!r} failed content "
                                  "verification: provenance records "
                                  f"sha256 {expected[:12]}…, archive "
                                  f"holds {actual[:12]}…")
        declared = record.get("bytes")
        if declared is not None \
                and int(declared) != os.path.getsize(path):
            raise ServeError(422, f"artifact {rel!r} size mismatch: "
                                  f"provenance records {declared} "
                                  "bytes")
    return len(records)


def _run_name(root: str) -> str:
    """The committed directory name: the manifest run id when it is a
    safe single path segment, else the extracted directory's name."""
    try:
        with open(os.path.join(root, MANIFEST_SUMMARY),
                  encoding="utf-8") as fh:
            run_id = str(json.load(fh).get("run_id", ""))
    except (OSError, ValueError):
        run_id = ""
    if run_id and "/" not in run_id and os.sep not in run_id \
            and not run_id.startswith(".") and run_id not in (".", ".."):
        return run_id
    base = os.path.basename(root.rstrip(os.sep))
    if base.startswith(".ingest-"):
        raise ServeError(422, "archive carries no usable run id "
                              "(summary.json run_id is empty or "
                              "unsafe and the archive has no named "
                              "top-level directory)")
    return base


def ingest_run(body: bytes, registry, obs) -> dict:
    """Verify and commit one tar-streamed run; the handler's core.

    Returns the registration summary for the 201 body.  Raises
    :class:`ServeError` — 400 (malformed archive), 409 (run exists),
    413 (oversized extraction), 422 (verification failure) — with the
    temp extraction already cleaned up.
    """
    ingest_dir = registry.ingest_dir
    assert ingest_dir is not None, "caller gates on ingest_dir"
    if not body:
        raise ServeError(400, "empty body; POST a tar archive of a "
                              "finished workflow workdir")
    os.makedirs(ingest_dir, exist_ok=True)
    tmp_root = os.path.join(ingest_dir, f".ingest-{uuid.uuid4().hex}")
    os.makedirs(tmp_root)
    try:
        total = _extract(bytes(body), tmp_root)
        root = _locate_root(tmp_root)
        verified = _verify(root)
        name = _run_name(root)
        final = os.path.join(ingest_dir, name)
        if os.path.exists(final) or registry.get(name) is not None:
            raise ServeError(409, f"run {name!r} already exists")
        try:
            os.rename(root, final)
        except OSError:                 # raced a sibling shard's commit
            raise ServeError(409, f"run {name!r} already exists") \
                from None
        run = registry.add(final)
    except ServeError:
        obs.counter("serve.ingest.rejected").inc()
        raise
    finally:
        shutil.rmtree(tmp_root, ignore_errors=True)
    obs.counter("serve.ingest.accepted").inc()
    obs.counter("serve.ingest.bytes").inc(len(body))
    obs.counter("serve.ingest.verified").inc(verified)
    obs.bus.emit("run_ingested", run.basename, run_id=run.run_id,
                 artifacts=verified, archive_bytes=len(body))
    return {
        "run": {"id": run.run_id, "workdir": run.basename},
        "artifacts_verified": verified,
        "archive_bytes": len(body),
        "extracted_bytes": total,
        "url": f"/api/runs/{run.basename}/manifest",
    }
