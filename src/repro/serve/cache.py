"""A hash-keyed in-memory LRU for rendered response bodies.

Chart rasterization and artifact format conversion are the server's
expensive read paths; both are pure functions of file *content*, so the
cache keys on content hashes — a rewritten chart misses naturally, an
unchanged one hits forever.  Bounded by entry count and total payload
bytes; thread-safe; hit/miss/eviction counters land on the run
context's metric registry as ``serve.cache.*``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUCache"]


class LRUCache:
    """Least-recently-used mapping of hashable keys to payloads.

    Values are ``bytes`` by default; pass ``sizer`` to bound other
    payload kinds (parsed manifests, frames) by an approximate byte
    cost instead of ``len``.
    """

    def __init__(self, max_entries: int = 128,
                 max_bytes: int = 64 * 1024 * 1024, obs=None,
                 sizer=len) -> None:
        if max_entries < 1:
            raise ValueError("cache needs at least one entry")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.obs = obs
        self.sizer = sizer
        self._lock = threading.Lock()
        self._data: OrderedDict[object, bytes] = OrderedDict()
        self._bytes = 0

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.counter(name).inc()

    def get(self, key) -> bytes | None:
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._data.move_to_end(key)
        self._count("serve.cache.hits" if value is not None
                    else "serve.cache.misses")
        return value

    def put(self, key, value: bytes) -> None:
        size = self.sizer(value)
        if size > self.max_bytes:
            return                      # would evict everything else
        with self._lock:
            old = self._data.pop(key, None)
            if old is not None:
                self._bytes -= self.sizer(old)
            self._data[key] = value
            self._bytes += size
            while (len(self._data) > self.max_entries
                   or self._bytes > self.max_bytes):
                _, evicted = self._data.popitem(last=False)
                self._bytes -= self.sizer(evicted)
                self._count("serve.cache.evictions")
        if self.obs is not None:
            self.obs.gauge("serve.cache.entries").set(len(self._data))
            self.obs.gauge("serve.cache.bytes").set(self._bytes)

    def get_or_put(self, key, factory) -> tuple[bytes, bool]:
        """``(value, was_hit)``; ``factory()`` runs on a miss.

        Concurrent misses for the same key may both compute — the
        factory must be pure, so last-write-wins is correct and cheaper
        than per-key locking for render-sized payloads.
        """
        value = self.get(key)
        if value is not None:
            return value, True
        value = factory()
        self.put(key, value)
        return value, False

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
