"""The bounded background job queue behind the expensive endpoints.

LLM insight analysis and policy-lab simulations take seconds to
minutes; running them on a request thread would pin connections and
invite timeouts.  Instead ``POST`` endpoints enqueue a job and return
``202`` with a polling URL; a small worker pool drains the queue.  The
queue is *bounded* and rejection is explicit: a full queue raises
:class:`QueueFull`, which the HTTP layer maps to ``429`` with a
``Retry-After`` header — backpressure the client can see, instead of an
unbounded in-memory backlog.  Job-count metrics land on the run context
as ``serve.jobs.*`` counters and gauges.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro._util.clock import wall_now

from repro._util.errors import ReproError

__all__ = ["Job", "JobQueue", "QueueFull", "QueueDraining"]

#: terminal and non-terminal job states
JOB_STATES = ("pending", "running", "done", "failed")


class QueueFull(ReproError):
    """The bounded queue rejected a submission (HTTP 429)."""


class QueueDraining(ReproError):
    """The queue no longer accepts work (server shutting down; 503)."""


@dataclass
class Job:
    """One unit of background work and its lifecycle record."""

    id: str
    kind: str
    status: str = "pending"
    result: object = None
    error: str = ""
    submitted_s: float = field(default_factory=wall_now)
    started_s: float | None = None
    finished_s: float | None = None

    def to_dict(self) -> dict:
        out = {"id": self.id, "kind": self.kind, "status": self.status,
               "submitted_s": round(self.submitted_s, 3)}
        if self.started_s is not None:
            out["started_s"] = round(self.started_s, 3)
        if self.finished_s is not None:
            out["finished_s"] = round(self.finished_s, 3)
        if self.status == "done":
            out["result"] = self.result
        if self.status == "failed":
            out["error"] = self.error
        return out


class JobQueue:
    """A worker pool over a bounded FIFO of callables."""

    def __init__(self, workers: int = 2, capacity: int = 8,
                 obs=None) -> None:
        if workers < 1:
            raise ValueError("job queue needs at least one worker")
        if capacity < 1:
            raise ValueError("job queue needs capacity >= 1")
        self.capacity = capacity
        self.obs = obs
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._seq = 0
        self._accepting = True
        self._active = 0
        #: submitted-but-not-finished count (covers the window between
        #: a worker dequeuing a job and marking it running, which
        #: ``qsize``/``_active`` alone would miss)
        self._outstanding = 0
        self._idle = threading.Condition(self._lock)
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"serve-job-worker-{i}")
            for i in range(workers)]
        for t in self._threads:
            t.start()

    # -- metrics -----------------------------------------------------------------

    def _count(self, name: str) -> None:
        if self.obs is not None:
            self.obs.counter(name).inc()

    def _gauges(self) -> None:
        if self.obs is not None:
            self.obs.gauge("serve.jobs.queued").set(self._queue.qsize())
            with self._lock:
                active = self._active
            self.obs.gauge("serve.jobs.active").set(active)

    # -- submission / polling ------------------------------------------------------

    def submit(self, kind: str, fn) -> Job:
        """Enqueue ``fn`` (no-arg callable); returns its :class:`Job`.

        Raises :class:`QueueDraining` after :meth:`drain`, or
        :class:`QueueFull` when the bounded queue has no room.
        """
        with self._lock:
            if not self._accepting:
                raise QueueDraining("job queue is draining")
            self._seq += 1
            job = Job(id=f"job-{self._seq}", kind=kind)
            self._jobs[job.id] = job
            # counted before the job becomes visible to workers: a fast
            # worker finishing between put_nowait and a late increment
            # would drive the counter to -1 and let drain() return with
            # work still in flight
            self._outstanding += 1
        try:
            self._queue.put_nowait((job, fn))
        except queue.Full:
            with self._lock:
                del self._jobs[job.id]
                self._outstanding -= 1
            self._count("serve.jobs.rejected")
            raise QueueFull(
                f"job queue full ({self.capacity} queued)") from None
        self._count("serve.jobs.submitted")
        self._gauges()
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.id)

    # -- worker loop ---------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:            # shutdown sentinel
                self._queue.task_done()
                return
            job, fn = item
            with self._lock:
                self._active += 1
                job.status = "running"
                job.started_s = wall_now()
            self._gauges()
            try:
                result = fn()
            except BaseException as exc:
                with self._lock:
                    job.status = "failed"
                    job.error = "".join(traceback.format_exception_only(
                        type(exc), exc)).strip()
                    job.finished_s = wall_now()
                self._count("serve.jobs.failed")
                if not isinstance(exc, Exception):
                    # KeyboardInterrupt/SystemExit must still stop the
                    # thread — record the failure, then propagate (the
                    # finally clause below keeps the counters honest)
                    raise
            else:
                with self._lock:
                    job.status = "done"
                    job.result = result
                    job.finished_s = wall_now()
                self._count("serve.jobs.completed")
            finally:
                with self._idle:
                    self._active -= 1
                    self._outstanding -= 1
                    self._idle.notify_all()
                self._queue.task_done()
                self._gauges()

    # -- shutdown ------------------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting work and wait for queued + running jobs.

        Returns ``True`` when everything finished within ``timeout``.
        The deadline is monotonic: a wall-clock jump (NTP step, DST)
        can neither extend nor truncate shutdown.
        """
        with self._lock:
            self._accepting = False
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._idle:
            while self._outstanding:
                rem = None if deadline is None \
                    else deadline - time.monotonic()
                if rem is not None and rem <= 0:
                    return False
                self._idle.wait(timeout=0.05 if rem is None
                                else min(0.05, rem))
        return True

    def _discard_queued(self) -> int:
        """Pop queued-but-unstarted jobs, failing them as cancelled.

        Runs only after a drain timeout: whatever is still *queued*
        will never be started, so report that honestly instead of
        leaving the entries pending forever (or blocking shutdown on a
        full queue).  Returns how many jobs were discarded.
        """
        n = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return n
            if item is None:
                # someone's shutdown sentinel: hand it back to a worker
                try:
                    self._queue.put_nowait(None)
                except queue.Full:      # pragma: no cover - defensive
                    pass
                return n
            job, _fn = item
            with self._idle:
                job.status = "failed"
                job.error = "cancelled at shutdown"
                job.finished_s = wall_now()
                self._outstanding -= 1
                self._idle.notify_all()
            self._queue.task_done()
            self._count("serve.jobs.cancelled")
            n += 1

    def close(self, timeout: float | None = 5.0) -> bool:
        """Drain, then stop the worker threads.

        A timed-out drain leaves jobs in the queue; a blocking
        ``put(None)`` on that full queue would hang shutdown forever.
        Instead the leftovers are discarded (marked failed, `cancelled
        at shutdown`) and the sentinels injected without blocking,
        bounded by a one-second monotonic budget for workers stuck on
        a job that never returns.
        """
        finished = self.drain(timeout)
        if not finished:
            self._discard_queued()
        sentinels = len(self._threads)
        stop_by = time.monotonic() + 1.0
        while sentinels:
            try:
                self._queue.put_nowait(None)
                sentinels -= 1
            except queue.Full:
                if not self._discard_queued():
                    if time.monotonic() >= stop_by:
                        break           # stuck worker; threads are daemonic
                    time.sleep(0.005)
        for t in self._threads:
            t.join(timeout=1.0)
        self._gauges()
        return finished
