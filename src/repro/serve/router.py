"""A small exact-segment router (no framework, no regexes).

Routes are registered as ``(method, pattern)`` pairs where a pattern is
a ``/``-separated path with ``<name>`` placeholders capturing exactly
one segment (``/api/runs/<id>/summary``).  Resolution returns the
handler plus the captured params; misses distinguish *unknown path*
(404) from *known path, wrong method* (405 with the allowed set), which
the HTTP layer turns into structured error responses.
"""

from __future__ import annotations

from repro._util.errors import ReproError

__all__ = ["Router", "Route", "ServeError", "NotFound",
           "MethodNotAllowed"]


class ServeError(ReproError):
    """An HTTP-mappable service failure."""

    def __init__(self, status: int, message: str,
                 headers: dict[str, str] | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})


class NotFound(ServeError):
    def __init__(self, message: str = "not found") -> None:
        super().__init__(404, message)


class MethodNotAllowed(ServeError):
    def __init__(self, allowed: list[str]) -> None:
        super().__init__(405, f"method not allowed; try {sorted(allowed)}",
                         headers={"Allow": ", ".join(sorted(allowed))})
        self.allowed = sorted(allowed)


class Route:
    """One compiled pattern."""

    __slots__ = ("method", "pattern", "segments", "handler")

    def __init__(self, method: str, pattern: str, handler) -> None:
        if not pattern.startswith("/"):
            raise ValueError(f"pattern must start with /: {pattern!r}")
        self.method = method.upper()
        self.pattern = pattern
        self.segments = pattern.strip("/").split("/") if \
            pattern.strip("/") else []
        self.handler = handler

    def match(self, parts: list[str]) -> dict[str, str] | None:
        if len(parts) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for seg, part in zip(self.segments, parts):
            if seg.startswith("<") and seg.endswith(">"):
                if not part:
                    return None         # empty segment never captures
                params[seg[1:-1]] = part
            elif seg != part:
                return None
        return params


class Router:
    """Register handlers; resolve ``(method, path)`` to one of them."""

    def __init__(self) -> None:
        self.routes: list[Route] = []

    def add(self, method: str, pattern: str, handler) -> None:
        self.routes.append(Route(method, pattern, handler))

    def get(self, pattern: str, handler) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler) -> None:
        self.add("POST", pattern, handler)

    def resolve(self, method: str, path: str):
        """``(route, params)`` for the first matching registration.

        Raises :class:`NotFound` when no pattern matches the path, or
        :class:`MethodNotAllowed` when patterns match only under other
        methods.
        """
        parts = path.strip("/").split("/") if path.strip("/") else []
        allowed: set[str] = set()
        for route in self.routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method == method.upper():
                return route, params
            allowed.add(route.method)
        if allowed:
            raise MethodNotAllowed(sorted(allowed))
        raise NotFound(f"no route for {path!r}")
