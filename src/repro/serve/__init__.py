"""``repro.serve`` — a concurrent HTTP service layer over finished runs.

The batch workflow ends with a workdir full of typed artifacts: curated
tables, charts with primitives sidecars, LLM reports, a provenance
ledger, and a run manifest.  This package turns one or more of those
workdirs into a long-lived daemon: a stdlib-only HTTP service (no
frameworks) with

- a ``selectors``-based non-blocking event-loop transport (keep-alive,
  pipelining, idle/header timeouts, chunked streaming, per-client rate
  limiting) with ``--procs N`` ``SO_REUSEPORT`` process sharding — the
  legacy thread-per-connection server remains as ``--transport
  thread``,
- a JSON API over runs, manifests, events, and provenance (including
  lineage traversal), with offset/limit cursor pagination,
- artifact downloads with content negotiation and content-hash ETags
  (conditional GET returns 304); large bodies and event listings
  stream with ``Transfer-Encoding: chunked``,
- a write path: ``POST /api/runs`` ingests a tar-streamed workdir,
  verifies every artifact against its provenance content hash, and
  hot-registers the run — no restart,
- a bounded background job queue with a worker pool for expensive work
  (LLM insight analysis, policy-lab simulations) with explicit
  backpressure (queue-full → 429 + ``Retry-After``),
- Prometheus-style ``/metrics`` text export of the run context's
  :class:`~repro.obs.metrics.MetricRegistry` (``shard`` label under
  ``--procs``), and
- the dashboard and trace pages served live.

Start it with ``repro-serve --workdir out/`` or
``python -m repro.serve --workdir out/``.
"""

from repro.serve.cache import LRUCache
from repro.serve.jobs import Job, JobQueue, QueueDraining, QueueFull
from repro.serve.limit import RateLimiter
from repro.serve.proto import ParsedRequest, ProtocolError, RequestParser
from repro.serve.router import (
    MethodNotAllowed,
    NotFound,
    Router,
    ServeError,
)
from repro.serve.runs import RunDir, RunRegistry
from repro.serve.api import Request, Response, ServeApp, StreamBody
from repro.serve.ingest import ingest_run
from repro.serve.loop import EventLoopServer
from repro.serve.server import ServeServer
from repro.serve.shard import run_sharded, sharding_supported

__all__ = [
    "LRUCache",
    "Job",
    "JobQueue",
    "QueueDraining",
    "QueueFull",
    "RateLimiter",
    "ParsedRequest",
    "ProtocolError",
    "RequestParser",
    "MethodNotAllowed",
    "NotFound",
    "Router",
    "ServeError",
    "RunDir",
    "RunRegistry",
    "Request",
    "Response",
    "StreamBody",
    "ServeApp",
    "ingest_run",
    "EventLoopServer",
    "ServeServer",
    "run_sharded",
    "sharding_supported",
]
