"""``repro.serve`` — a concurrent HTTP service layer over finished runs.

The batch workflow ends with a workdir full of typed artifacts: curated
tables, charts with primitives sidecars, LLM reports, a provenance
ledger, and a run manifest.  This package turns one or more of those
workdirs into a long-lived daemon: a stdlib-only threaded HTTP server
(no frameworks) with

- a JSON API over runs, manifests, events, and provenance (including
  lineage traversal),
- artifact downloads with content negotiation and content-hash ETags
  (conditional GET returns 304),
- on-demand SVG/PNG chart rendering behind a hash-keyed in-memory LRU,
- a bounded background job queue with a worker pool for expensive work
  (LLM insight analysis, policy-lab simulations) with explicit
  backpressure (queue-full → 429 + ``Retry-After``),
- Prometheus-style ``/metrics`` text export of the run context's
  :class:`~repro.obs.metrics.MetricRegistry`, and
- the dashboard and trace pages served live.

Start it with ``repro-serve --workdir out/`` or
``python -m repro.serve --workdir out/``.
"""

from repro.serve.cache import LRUCache
from repro.serve.jobs import Job, JobQueue, QueueDraining, QueueFull
from repro.serve.router import (
    MethodNotAllowed,
    NotFound,
    Router,
    ServeError,
)
from repro.serve.runs import RunDir, RunRegistry
from repro.serve.api import Request, Response, ServeApp
from repro.serve.server import ServeServer

__all__ = [
    "LRUCache",
    "Job",
    "JobQueue",
    "QueueDraining",
    "QueueFull",
    "MethodNotAllowed",
    "NotFound",
    "Router",
    "ServeError",
    "RunDir",
    "RunRegistry",
    "Request",
    "Response",
    "ServeApp",
    "ServeServer",
]
