"""The HTTP transport: ``ThreadingHTTPServer`` over a :class:`ServeApp`.

One connection per thread (stdlib threading server), one
:class:`~repro.serve.api.Request` per HTTP request, every response
produced by :meth:`ServeApp.dispatch` — the handler below never builds
a body itself.  Shutdown is graceful by default: stop accepting
connections, join in-flight request threads, then drain the background
job queue so accepted (``202``) work still completes.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.api import Request, Response, ServeApp, error_response

__all__ = ["ServeServer"]


class _Handler(BaseHTTPRequestHandler):
    """Adapter from the stdlib request callbacks to the app."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1.0"
    app: ServeApp = None              # set by ServeServer

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):   # pragma: no cover
            super().log_message(fmt, *args)

    def _read_body(self) -> bytes | None:
        """Request body, or ``None`` after replying to a body this
        transport will not read (oversized declared length → 413;
        ``Transfer-Encoding`` → 411, since this adapter only reads
        ``Content-Length`` bodies — silently treating a chunked body
        as empty, as it once did, corrupts the connection *and* the
        request).  The event-loop transport decodes chunked bodies;
        here the explicit refusal keeps the contract honest."""
        if self.headers.get("Transfer-Encoding"):
            self._send(error_response(
                411, "this transport needs Content-Length; chunked "
                     "request bodies need the event-loop transport "
                     "(repro-serve --transport loop)"))
            self.close_connection = True
            return None
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length > self.app.transport_body_cap:
            self._send(error_response(
                413, f"body exceeds {self.app.transport_body_cap} "
                     "bytes"))
            self.close_connection = True
            return None
        return self.rfile.read(length) if length > 0 else b""

    def _send(self, response: Response) -> None:
        body = response.body
        if not isinstance(body, (bytes, bytearray)):
            body = bytes(body)          # StreamBody: baseline buffers
        self.send_response(response.status)
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.status == 304:
            # 304 carries no body by definition
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _handle(self, method: str) -> None:
        body = self._read_body()
        if body is None:
            return
        split = urlsplit(self.path)
        request = Request(
            method=method,
            path=unquote(split.path),
            query=dict(parse_qsl(split.query)),
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body)
        try:
            self._send(self.app.dispatch(request))
        except (BrokenPipeError, ConnectionResetError):
            pass                        # client went away mid-response

    # -- verbs -------------------------------------------------------------------

    def do_GET(self) -> None:
        self._handle("GET")

    def do_HEAD(self) -> None:
        self._handle("GET")             # same dispatch, body suppressed

    def do_POST(self) -> None:
        self._handle("POST")

    def do_PUT(self) -> None:
        self._handle("PUT")             # router answers 405 + Allow

    def do_DELETE(self) -> None:
        self._handle("DELETE")


class ServeServer:
    """Socket lifecycle around one :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.app = app
        handler = type("BoundHandler", (_Handler,), {"app": app})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        #: joinable request threads: server_close() waits for in-flight
        #: requests instead of cutting their sockets (graceful drain)
        self.httpd.daemon_threads = False
        self.httpd.block_on_close = True
        self.httpd.verbose = verbose
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle ----------------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (or a signal
        handler calling it) stops the loop."""
        self.httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "ServeServer":
        """Serve on a daemon thread (tests, benchmarks, embedding)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True, name="repro-serve")
        self._thread.start()
        return self

    def close(self, graceful: bool = True,
              timeout: float | None = 10.0) -> bool:
        """Stop accepting, join in-flight requests, drain the job
        queue.  Returns ``True`` when everything completed in time."""
        self.httpd.shutdown()           # stops serve_forever
        self.httpd.server_close()       # joins request threads
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if graceful:
            return self.app.close(timeout)
        return self.app.jobs.drain(timeout=0)
