"""The service application: routes, handlers, and response building.

:class:`ServeApp` is transport-free — it maps a :class:`Request` to a
:class:`Response` through the router, with no socket in sight, which is
what makes the endpoint suite testable without binding ports.  The HTTP
layer (:mod:`repro.serve.server`) is a thin adapter on top.

Read paths (artifacts, charts, pages) are conditional-GET aware: every
response body is addressed by the underlying file's content hash (the
same streaming SHA-256 the provenance ledger uses), served as a strong
ETag, and short-circuited to ``304 Not Modified`` when the client already
holds it.  Expensive work goes through the bounded background job
queue — or, with ``fabric=`` set, the crash-safe durable store that
``repro-launcher`` processes drain — and every ``POST`` endpoint
returns ``202`` plus a polling URL either way.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field

from repro._util.clock import wall_now
from repro._util.errors import DataError, ReproError
from repro.fabric.campaign import submit_campaign
from repro.fabric.runners import run_insight, run_simulate, \
    simulate_payload
from repro.fabric.store import FabricStore
from repro.frame.io import iter_table
from repro.obs import RunContext
from repro.serve.cache import LRUCache
from repro.serve.jobs import JobQueue, QueueDraining, QueueFull
from repro.serve.router import NotFound, Router, ServeError
from repro.serve.runs import RunDir, RunRegistry
from repro.store.hashing import default_hash_cache
from repro.store.store import read_table_fast, resolve_table_path

__all__ = ["Request", "Response", "StreamBody", "ServeApp"]

_CTYPES = {
    ".csv": "text/csv; charset=utf-8",
    ".npf": "application/x-npf",
    ".txt": "text/plain; charset=utf-8",
    ".html": "text/html; charset=utf-8",
    ".png": "image/png",
    ".md": "text/markdown; charset=utf-8",
    ".json": "application/json",
    ".jsonl": "application/jsonl",
    ".svg": "image/svg+xml",
}


@dataclass
class Request:
    """One parsed HTTP request, transport-free."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


class StreamBody:
    """An iterable-of-chunks response body.

    ``Response.body`` may be one of these instead of ``bytes``: the
    event-loop transport sends each chunk with ``Transfer-Encoding:
    chunked`` as it arrives, so a year-scale ``events.jsonl`` or a
    large artifact never materializes server-side.  Dispatch-level
    callers (the endpoint test matrix, the threaded adapter) keep the
    ``bytes`` surface they already use — ``decode()``, ``bytes()``,
    ``len()``, ``startswith()`` — by materializing on first touch, so
    switching a handler to streaming is invisible below the transport.
    """

    def __init__(self, chunks) -> None:
        self._chunks = chunks
        self._consumed = False
        self._cached: bytes | None = None

    def __iter__(self):
        if self._cached is not None:
            yield self._cached
            return
        if self._consumed:
            raise RuntimeError("stream body already consumed")
        self._consumed = True
        for chunk in self._chunks:
            yield bytes(chunk)

    def materialize(self) -> bytes:
        if self._cached is None:
            self._cached = b"".join(self)
        return self._cached

    def decode(self, encoding: str = "utf-8",
               errors: str = "strict") -> str:
        return self.materialize().decode(encoding, errors)

    def startswith(self, prefix) -> bool:
        return self.materialize().startswith(prefix)

    def __bytes__(self) -> bytes:
        return self.materialize()

    def __len__(self) -> int:
        return len(self.materialize())

    def __getitem__(self, item):
        return self.materialize()[item]

    def close(self) -> None:
        closer = getattr(self._chunks, "close", None)
        if closer is not None:
            closer()


@dataclass
class Response:
    """Status, body, and headers, ready for any transport.

    ``body`` is ``bytes`` for buffered responses or a
    :class:`StreamBody` for chunked streaming ones.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def _sanitize(value):
    """JSON-safe deep copy: numpy scalars unwrap, NaN/inf become null."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()            # numpy scalar
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def json_response(payload, status: int = 200,
                  headers: dict[str, str] | None = None) -> Response:
    body = json.dumps(_sanitize(payload), sort_keys=True).encode("utf-8")
    return Response(status=status, body=body,
                    content_type="application/json",
                    headers=dict(headers or {}))


def error_response(status: int, message: str,
                   headers: dict[str, str] | None = None) -> Response:
    return json_response({"error": {"status": status, "message": message}},
                         status=status, headers=headers)


def _call_with_timeout(fn, timeout_s: float | None):
    """Run ``fn`` with a hard wall-clock bound (504 on expiry).

    The worker thread is daemonic: a stuck handler cannot block
    shutdown, it is simply abandoned after its response slot expired.
    """
    if not timeout_s:
        return fn()
    box: dict[str, object] = {}

    def run() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:    # re-raised on the request thread
            box["error"] = exc

    t = threading.Thread(target=run, daemon=True, name="serve-handler")
    t.start()
    t.join(timeout_s)
    if t.is_alive():
        raise ServeError(504, f"request exceeded {timeout_s:g}s")
    if "error" in box:
        raise box["error"]              # type: ignore[misc]
    return box["value"]


class ServeApp:
    """Everything the server does, minus the sockets."""

    def __init__(self, workdirs, *, obs: RunContext | None = None,
                 llm_backend: str = "chart-analyst",
                 cache_entries: int = 128,
                 cache_bytes: int = 64 * 1024 * 1024,
                 job_workers: int = 2, job_capacity: int = 8,
                 request_timeout_s: float | None = 30.0,
                 max_body_bytes: int = 1 << 20,
                 retry_after_s: int = 1,
                 fabric: str | os.PathLike | None = None,
                 ingest_dir: str | os.PathLike | None = None,
                 max_ingest_bytes: int = 256 * 1024 * 1024,
                 stream_threshold_bytes: int = 256 * 1024) -> None:
        self.registry = RunRegistry(workdirs, ingest_dir=ingest_dir)
        #: bounded history: a long-lived server must not accumulate an
        #: unbounded event/span record the way a batch run may
        self.obs = obs or RunContext(max_history=2048)
        self.hashes = default_hash_cache()
        self.cache = LRUCache(cache_entries, cache_bytes, obs=self.obs)
        self.jobs = JobQueue(workers=job_workers, capacity=job_capacity,
                             obs=self.obs)
        #: durable path: POSTs enqueue into the fabric store (executed
        #: by repro-launcher processes) instead of the in-memory queue
        self.fabric = None if fabric is None \
            else FabricStore(fabric, obs=self.obs)
        self.llm_backend = llm_backend
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes
        self.max_ingest_bytes = max_ingest_bytes
        self.stream_threshold_bytes = stream_threshold_bytes
        self.retry_after_s = retry_after_s
        #: shard index under --procs (labels /metrics); None unsharded
        self.shard: str | None = None
        self.started_s = wall_now()     # display only; uptime is below
        self._started_mono = time.monotonic()
        self.router = self._build_router()

    @property
    def transport_body_cap(self) -> int:
        """The largest request body any route admits — what a
        transport should allow through before routing happens."""
        return max(self.max_body_bytes, self.max_ingest_bytes)

    def _build_router(self) -> Router:
        r = Router()
        r.get("/healthz", self._h_healthz)
        r.get("/metrics", self._h_metrics)
        r.get("/api/runs", self._h_runs)
        r.post("/api/runs", self._h_post_run)
        r.get("/api/runs/<id>/artifacts", self._h_run_artifacts)
        r.get("/api/runs/<id>/manifest", self._h_run_manifest)
        r.get("/api/runs/<id>/summary", self._h_run_summary)
        r.get("/api/runs/<id>/events", self._h_run_events)
        r.get("/api/runs/<id>/provenance", self._h_run_provenance)
        r.get("/api/artifacts/<name>", self._h_artifact)
        r.get("/api/charts", self._h_chart_index)
        r.get("/api/charts/<file>", self._h_chart)
        r.get("/api/jobs", self._h_jobs)
        r.get("/api/jobs/<id>", self._h_job)
        r.post("/api/insights", self._h_post_insight)
        r.post("/api/simulate", self._h_post_simulate)
        r.get("/api/campaigns", self._h_campaigns)
        r.get("/api/campaigns/<id>", self._h_campaign)
        r.post("/api/campaigns", self._h_post_campaign)
        r.get("/", self._h_dashboard)
        r.get("/dashboard", self._h_dashboard)
        r.get("/trace", self._h_trace)
        r.get("/charts/<file>", self._h_chart_page)
        return r

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Route and execute one request; never raises."""
        self.obs.counter("serve.http.requests").inc()
        try:
            route, params = self.router.resolve(request.method,
                                                request.path)
            cap = self.max_ingest_bytes \
                if (request.method == "POST"
                    and route.pattern == "/api/runs") \
                else self.max_body_bytes
            if len(request.body) > cap:
                raise ServeError(413, f"body exceeds {cap} bytes")
            with self.obs.span(f"http:{route.pattern}",
                               method=request.method):
                response = _call_with_timeout(
                    lambda: route.handler(request, params),
                    self.request_timeout_s)
        except ServeError as exc:
            response = error_response(exc.status, exc.message,
                                      headers=exc.headers)
        except ReproError as exc:
            response = error_response(400, str(exc))
        except Exception as exc:        # pragma: no cover - defensive
            self.obs.counter("serve.http.unhandled_errors").inc()
            response = error_response(
                500, f"internal error: {type(exc).__name__}: {exc}")
        self.obs.counter(
            f"serve.http.status.{response.status // 100}xx").inc()
        return response

    def close(self, timeout: float | None = 5.0) -> bool:
        """Graceful drain of the background queue (SIGTERM path).

        Durable jobs need no draining — that is the point: they sit in
        the fabric store and any launcher finishes them later.
        """
        finished = self.jobs.close(timeout)
        if self.fabric is not None:
            self.fabric.close()
        return finished

    def clear_caches(self) -> None:
        """Drop the response LRU and the hash memo (benchmark cold
        path; never needed in normal operation)."""
        self.cache.clear()
        self.hashes.clear()

    # -- shared helpers ------------------------------------------------------------

    def _run(self, request: Request,
             run_id: str | None = None) -> RunDir:
        run = self.registry.get(run_id or request.query.get("run"))
        if run is None:
            raise NotFound(f"unknown run "
                           f"{run_id or request.query.get('run')!r}")
        return run

    def _conditional(self, request: Request, etag: str,
                     factory, content_type: str,
                     cache_key=None) -> Response:
        """Strong-ETag conditional GET with optional LRU body reuse."""
        quoted = f'"{etag}"'
        if quoted in request.header("if-none-match"):
            self.obs.counter("serve.http.not_modified").inc()
            return Response(status=304, body=b"",
                            content_type=content_type,
                            headers={"ETag": quoted})
        if cache_key is not None:
            body, _hit = self.cache.get_or_put(cache_key, factory)
        else:
            body = factory()
        return Response(status=200, body=body, content_type=content_type,
                        headers={"ETag": quoted})

    def _serve_file(self, request: Request, path: str) -> Response:
        ext = os.path.splitext(path)[1].lower()
        ctype = _CTYPES.get(ext, "application/octet-stream")
        try:
            sha = self.hashes.sha256(path)
            size = os.path.getsize(path)
        except OSError:
            raise NotFound(f"missing file {os.path.basename(path)!r}") \
                from None
        if size > self.stream_threshold_bytes:
            # large bodies stream chunked (uncached): buffering them
            # whole would defeat both the LRU bound and the event loop
            def stream() -> StreamBody:
                def chunks():
                    with open(path, "rb") as fh:
                        while True:
                            block = fh.read(256 * 1024)
                            if not block:
                                return
                            yield block
                return StreamBody(chunks())

            return self._conditional(request, sha, stream, ctype)

        def read() -> bytes:
            with open(path, "rb") as fh:
                return fh.read()

        return self._conditional(request, sha, read, ctype,
                                 cache_key=("file", sha))

    # -- service endpoints ---------------------------------------------------------

    def _h_healthz(self, request: Request, params: dict) -> Response:
        payload = {
            "ok": True,
            "runs": [r.basename for r in self.registry.runs],
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
        }
        if self.shard is not None:
            payload["shard"] = self.shard
        return json_response(payload)

    def _h_metrics(self, request: Request, params: dict) -> Response:
        """Prometheus text exposition of the run context's registry.

        Under ``--procs`` each shard is its own process with its own
        registry, so every sample carries a ``shard`` label — scrape
        each shard and sum, exactly like any multi-process exporter.
        """
        label = "" if self.shard is None \
            else '{shard="%s"}' % self.shard
        lines = []
        for name, (kind, value) in \
                self.obs.metrics.typed_snapshot().items():
            metric = "repro_" + "".join(
                c if c.isalnum() else "_" for c in name)
            if kind == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric}{label} {value:g}")
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return Response(body=body,
                        content_type="text/plain; version=0.0.4; "
                                     "charset=utf-8")

    # -- pagination ----------------------------------------------------------------

    @staticmethod
    def _page_params(request: Request) -> tuple[int | None, int | None]:
        """``(offset, limit)`` cursor; ``None`` where not given."""
        out = []
        for name in ("offset", "limit"):
            raw = request.query.get(name)
            if raw is None:
                out.append(None)
                continue
            try:
                value = int(raw)
            except ValueError:
                raise ServeError(400, f"{name} must be an integer") \
                    from None
            if value < 0:
                raise ServeError(400, f"{name} must be >= 0")
            out.append(value)
        return out[0], out[1]

    @staticmethod
    def _next_link(path: str, offset: int, limit: int,
                   extra: dict[str, str] | None = None) -> str:
        query = dict(extra or {})
        query["offset"] = str(offset)
        query["limit"] = str(limit)
        pairs = "&".join(f"{k}={v}" for k, v in sorted(query.items()))
        return f"{path}?{pairs}"

    def _paginate(self, request: Request, path: str, items: list,
                  key: str, extra_query: dict[str, str] | None = None,
                  extra_payload: dict | None = None) -> Response:
        """Slice ``items`` by the offset/limit cursor, linking the
        next page while more remain (cursors are plain offsets, so
        they stay stable as long as the listing only *appends* — which
        ingest guarantees for runs)."""
        offset, limit = self._page_params(request)
        payload = dict(extra_payload or {})
        payload["n_total"] = len(items)
        if offset is None and limit is None:
            payload[key] = items
            return json_response(payload)
        offset = offset or 0
        window = items[offset:offset + limit] if limit is not None \
            else items[offset:]
        payload[key] = window
        payload["offset"] = offset
        if limit is not None and offset + limit < len(items):
            payload["next"] = self._next_link(
                path, offset + limit, limit, extra_query)
        return json_response(payload)

    # -- run endpoints -------------------------------------------------------------

    def _h_runs(self, request: Request, params: dict) -> Response:
        return self._paginate(request, "/api/runs",
                              self.registry.list_runs(), "runs")

    def _h_run_manifest(self, request: Request, params: dict) -> Response:
        return json_response(self._run(request, params["id"]).manifest())

    def _h_run_summary(self, request: Request, params: dict) -> Response:
        return json_response(self._run(request, params["id"]).summary())

    def _h_run_events(self, request: Request, params: dict) -> Response:
        """Run events: tail page, cursor page, or full stream.

        ``?limit=N`` alone keeps the original contract (the last N
        matching events, buffered — a dashboard's "what just
        happened").  With ``?offset`` the listing walks *forward* with
        a ``next`` cursor, and the body streams chunked off the
        ``events.jsonl`` reader — as does the no-parameter full dump —
        so paper-scale manifests never materialize server-side.
        """
        run = self._run(request, params["id"])
        kind = request.query.get("kind")
        offset, limit = self._page_params(request)
        if offset is None and limit is not None:
            events = run.events(kind=kind, limit=limit)
            return json_response({"run_id": run.run_id,
                                  "n": len(events), "events": events})
        start = offset or 0
        # open before committing to a 200: a missing manifest 404s here
        events_iter = run.iter_events(kind)
        path = f"/api/runs/{params['id']}/events"
        extra = {"kind": kind} if kind is not None else None

        def generate():
            parts = [f'{{"offset": {start}, '
                     f'"run_id": {json.dumps(run.run_id)}, "events": [']
            size = taken = 0
            more = False
            for index, event in enumerate(events_iter):
                if index < start:
                    continue
                if limit is not None and taken >= limit:
                    more = True
                    break
                text = json.dumps(_sanitize(event), sort_keys=True)
                parts.append(("," if taken else "") + text)
                taken += 1
                size += len(text)
                if size >= 64 * 1024:
                    yield "".join(parts).encode("utf-8")
                    parts, size = [], 0
            parts.append(f'], "n": {taken}')
            if more:
                link = self._next_link(path, start + limit, limit, extra)
                parts.append(f', "next": {json.dumps(link)}')
            parts.append("}")
            yield "".join(parts).encode("utf-8")

        return Response(status=200, body=StreamBody(generate()),
                        content_type="application/json")

    def _h_run_provenance(self, request: Request,
                          params: dict) -> Response:
        run = self._run(request, params["id"])
        artifact = request.query.get("artifact")
        if artifact is None:
            return json_response(run.provenance())
        direction = request.query.get("direction", "up")
        try:
            return json_response(run.lineage(artifact, direction))
        except DataError as exc:
            status = 404 if "no provenance record" in str(exc) else 400
            raise ServeError(status, str(exc)) from None

    def _h_run_artifacts(self, request: Request,
                         params: dict) -> Response:
        """Paginated provenance-record listing for one run."""
        run = self._run(request, params["id"])
        records = list(run.provenance().get("artifacts", []))
        return self._paginate(
            request, f"/api/runs/{params['id']}/artifacts",
            records, "artifacts",
            extra_payload={"run_id": run.run_id})

    # -- ingest (the write path) ---------------------------------------------------

    def _h_post_run(self, request: Request, params: dict) -> Response:
        """Ingest a completed workdir (tar stream) into the registry.

        Every artifact is verified against its ``provenance.json``
        content hash before the run becomes visible; a tampered or
        incomplete archive is rejected with a structured error and
        leaves no trace on disk.
        """
        if self.registry.ingest_dir is None:
            raise ServeError(503, "run ingest is disabled (start "
                                  "repro-serve with --ingest-dir)")
        from repro.serve.ingest import ingest_run
        result = ingest_run(request.body, self.registry, self.obs)
        return json_response(result, status=201)

    # -- artifact endpoint ---------------------------------------------------------

    def _negotiate(self, request: Request, path: str) -> str:
        """Representation: ``csv``/``npf``/``json``/``jsonl``/``raw``."""
        fmt = request.query.get("format")
        if fmt is not None:
            if fmt not in ("csv", "npf", "json", "jsonl", "raw"):
                raise ServeError(400, f"unknown format {fmt!r}; "
                                      f"want csv|npf|json|jsonl|raw")
            return fmt
        accept = request.header("accept")
        tabular = path.endswith((".csv", ".npf"))
        if tabular and "application/json" in accept:
            return "json"
        if tabular and "application/x-npf" in accept:
            return "npf"
        if tabular and "text/csv" in accept:
            return "csv"
        return "raw"

    def _h_artifact(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact(params["name"])
        if path is None:
            raise NotFound(f"no artifact {params['name']!r} in run "
                           f"{run.basename!r}")
        fmt = self._negotiate(request, path)
        if fmt == "npf" and path.endswith(".csv"):
            # only a hash-verified twin may substitute for the CSV
            twin = resolve_table_path(path, hash_cache=self.hashes)
            if not twin.endswith(".npf"):
                raise ServeError(406, "no current .npf twin for "
                                      f"{params['name']!r}")
            path = twin
        elif fmt == "csv" and not path.endswith(".csv"):
            raise ServeError(406, f"{params['name']!r} has no CSV form")
        if fmt not in ("json", "jsonl"):
            return self._serve_file(request, path)
        if not path.endswith((".csv", ".npf")):
            raise ServeError(406, f"{params['name']!r} is not tabular; "
                                  f"only csv/npf convert to {fmt}")
        if fmt == "jsonl":
            return self._stream_jsonl(request, params["name"], path)
        sha = self.hashes.sha256(path)

        def to_json() -> bytes:
            frame = read_table_fast(path, hash_cache=self.hashes)
            payload = {"name": params["name"], "n_rows": len(frame),
                       "columns": frame.to_dict()}
            return json.dumps(_sanitize(payload),
                              sort_keys=True).encode("utf-8")

        return self._conditional(request, sha + "-json", to_json,
                                 "application/json",
                                 cache_key=("artifact-json", sha))

    def _stream_jsonl(self, request: Request, name: str,
                      path: str) -> Response:
        """Row-streamed table conversion: one JSON object per line,
        produced chunk-by-chunk off :func:`repro.frame.io.iter_table`
        so an 18M-row table never lives in memory whole."""
        sha = self.hashes.sha256(path)

        def generate():
            for frame in iter_table(path, chunk_rows=4096):
                columns = frame.to_dict()
                names = list(columns)
                lines = []
                for values in zip(*(columns[n] for n in names)):
                    record = dict(zip(names, values))
                    lines.append(json.dumps(_sanitize(record),
                                            sort_keys=True))
                if lines:
                    yield ("\n".join(lines) + "\n").encode("utf-8")

        return self._conditional(request, sha + "-jsonl",
                                 lambda: StreamBody(generate()),
                                 "application/jsonl")

    # -- chart endpoints -----------------------------------------------------------

    def _h_chart_index(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        return json_response({"run_id": run.run_id,
                              "charts": run.chart_keys()})

    def _render_chart(self, sidecar: str, ext: str) -> bytes:
        from repro.charts.render import Primitive
        from repro.charts.svg import primitives_to_svg
        with open(sidecar, encoding="utf-8") as fh:
            payload = json.load(fh)
        prims = [Primitive(**raw) for raw in payload["primitives"]]
        width = int(payload["width"])
        height = int(payload["height"])
        self.obs.counter("serve.charts.rendered").inc()
        if ext == "svg":
            return primitives_to_svg(prims, width, height).encode("utf-8")
        from repro.raster.draw import Canvas
        from repro.raster.png import encode_png
        canvas = Canvas(width, height)
        for prim in prims:
            canvas.draw(prim)
        return encode_png(canvas.to_uint8())

    def _h_chart(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        key, dot, ext = params["file"].rpartition(".")
        if not dot or ext not in ("svg", "png"):
            raise NotFound("chart endpoint serves <key>.svg or "
                           "<key>.png")
        sidecar = run.chart_sidecar(key)
        if sidecar is None:
            raise NotFound(f"no renderable chart {key!r} in run "
                           f"{run.basename!r}")
        sha = self.hashes.sha256(sidecar)
        ctype = _CTYPES[f".{ext}"]
        return self._conditional(
            request, f"{sha}-{ext}",
            lambda: self._render_chart(sidecar, ext), ctype,
            cache_key=("chart", sha, ext))

    def _h_chart_page(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        name = params["file"]
        if not name.endswith(".html"):
            name += ".html"
        path = run.find_artifact(f"charts/{name}")
        if path is None:
            raise NotFound(f"no chart page {params['file']!r}")
        return self._serve_file(request, path)

    # -- live pages ----------------------------------------------------------------

    def _h_dashboard(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact("dashboard/index.html")
        if path is None:
            # no dashboard yet: a minimal index so `/` always answers
            return json_response({
                "service": "repro.serve",
                "runs": [r.basename for r in self.registry.runs],
                "api": sorted({f"{r.method} {r.pattern}"
                               for r in self.router.routes}),
            })
        return self._serve_file(request, path)

    def _h_trace(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact("dashboard/trace.html")
        if path is None:
            raise NotFound(f"run {run.basename!r} has no trace page")
        return self._serve_file(request, path)

    # -- background jobs -----------------------------------------------------------

    def _h_jobs(self, request: Request, params: dict) -> Response:
        jobs = [j.to_dict() for j in self.jobs.list_jobs()]
        if self.fabric is not None:
            jobs += [j.to_dict() for j in self.fabric.list_jobs(
                campaign=request.query.get("campaign"),
                state=request.query.get("state"))]
        return json_response({"jobs": jobs})

    def _h_job(self, request: Request, params: dict) -> Response:
        job = self.jobs.get(params["id"])
        if job is not None:
            return json_response(job.to_dict())
        if self.fabric is not None:
            durable = self.fabric.get(params["id"])
            if durable is not None:
                out = durable.to_dict()
                if request.query.get("history") in ("1", "true"):
                    out["transitions"] = \
                        self.fabric.transitions(durable.id)
                return json_response(out)
        raise NotFound(f"no job {params['id']!r}")

    def _submit(self, kind: str, payload: dict, fn) -> Response:
        """Enqueue one job: durably when the fabric is on, else on the
        in-memory queue.  Same 202-plus-poll-URL contract either way."""
        if self.fabric is not None:
            durable = self.fabric.submit(kind, payload)
            return json_response({"job": durable.to_dict(),
                                  "poll": f"/api/jobs/{durable.id}"},
                                 status=202)
        try:
            job = self.jobs.submit(kind, fn)
        except QueueFull as exc:
            raise ServeError(
                429, str(exc),
                headers={"Retry-After": str(self.retry_after_s)}) \
                from None
        except QueueDraining as exc:
            raise ServeError(503, str(exc)) from None
        return json_response({"job": job.to_dict(),
                              "poll": f"/api/jobs/{job.id}"},
                             status=202)

    def _json_body(self, request: Request) -> dict:
        try:
            payload = json.loads(request.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise ServeError(400, "body must be JSON") from None
        if not isinstance(payload, dict):
            raise ServeError(400, "body must be a JSON object")
        return payload

    def _h_post_insight(self, request: Request, params: dict) -> Response:
        body = self._json_body(request)
        key = body.get("chart")
        if not isinstance(key, str) or not key:
            raise ServeError(400, 'body needs {"chart": "<key>"}')
        run = self._run(request, body.get("run"))
        if run.chart_sidecar(key) is None:
            raise NotFound(f"no renderable chart {key!r} in run "
                           f"{run.basename!r}")
        payload = {"run": run.run_id, "run_root": run.root,
                   "chart": key, "backend": self.llm_backend}
        return self._submit("insight", payload,
                            lambda: run_insight(payload, self.obs))

    def _h_post_simulate(self, request: Request, params: dict) -> Response:
        # validation errors (ReproError) surface as 400s in dispatch
        payload = simulate_payload(self._json_body(request))
        return self._submit("simulate", payload,
                            lambda: run_simulate(payload, self.obs))

    # -- campaigns (fabric only) ---------------------------------------------------

    def _fabric_or_503(self) -> FabricStore:
        if self.fabric is None:
            raise ServeError(503, "campaigns need the durable job "
                                  "fabric (start with repro-serve "
                                  "--fabric)")
        return self.fabric

    def _h_campaigns(self, request: Request, params: dict) -> Response:
        fabric = self._fabric_or_503()
        return json_response({"campaigns": fabric.list_campaigns()})

    def _h_campaign(self, request: Request, params: dict) -> Response:
        fabric = self._fabric_or_503()
        try:
            status = fabric.campaign_status(params["id"])
        except DataError:
            raise NotFound(f"no campaign {params['id']!r}") from None
        if request.query.get("jobs") in ("1", "true"):
            status["jobs"] = [j.to_dict() for j in
                              fabric.list_jobs(campaign=params["id"])]
        return json_response(status)

    def _h_post_campaign(self, request: Request, params: dict) -> Response:
        """Durably enqueue one parameter-sweep campaign (idempotent:
        resubmitting the same name+spec resumes it)."""
        fabric = self._fabric_or_503()
        body = self._json_body(request)
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError(400, 'body needs {"name": "<campaign>"}')
        spec = body.get("spec", {})
        if not isinstance(spec, dict):
            raise ServeError(400, "spec must be a JSON object")
        status = submit_campaign(fabric, name, spec)
        return json_response(
            {"campaign": status,
             "poll": f"/api/campaigns/{status['id']}"}, status=202)
