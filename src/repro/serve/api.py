"""The service application: routes, handlers, and response building.

:class:`ServeApp` is transport-free — it maps a :class:`Request` to a
:class:`Response` through the router, with no socket in sight, which is
what makes the endpoint suite testable without binding ports.  The HTTP
layer (:mod:`repro.serve.server`) is a thin adapter on top.

Read paths (artifacts, charts, pages) are conditional-GET aware: every
response body is addressed by the underlying file's content hash (the
same streaming SHA-256 the provenance ledger uses), served as a strong
ETag, and short-circuited to ``304 Not Modified`` when the client already
holds it.  Expensive work goes through the bounded background job
queue — or, with ``fabric=`` set, the crash-safe durable store that
``repro-launcher`` processes drain — and every ``POST`` endpoint
returns ``202`` plus a polling URL either way.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from dataclasses import dataclass, field

from repro._util.errors import DataError, ReproError
from repro.fabric.campaign import submit_campaign
from repro.fabric.runners import run_insight, run_simulate, \
    simulate_payload
from repro.fabric.store import FabricStore
from repro.obs import RunContext
from repro.serve.cache import LRUCache
from repro.serve.jobs import JobQueue, QueueDraining, QueueFull
from repro.serve.router import NotFound, Router, ServeError
from repro.serve.runs import RunDir, RunRegistry
from repro.store.hashing import default_hash_cache
from repro.store.store import read_table_fast, resolve_table_path

__all__ = ["Request", "Response", "ServeApp"]

_CTYPES = {
    ".csv": "text/csv; charset=utf-8",
    ".npf": "application/x-npf",
    ".txt": "text/plain; charset=utf-8",
    ".html": "text/html; charset=utf-8",
    ".png": "image/png",
    ".md": "text/markdown; charset=utf-8",
    ".json": "application/json",
    ".jsonl": "application/jsonl",
    ".svg": "image/svg+xml",
}


@dataclass
class Request:
    """One parsed HTTP request, transport-free."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """Status, body, and headers, ready for any transport."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)


def _sanitize(value):
    """JSON-safe deep copy: numpy scalars unwrap, NaN/inf become null."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()            # numpy scalar
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def json_response(payload, status: int = 200,
                  headers: dict[str, str] | None = None) -> Response:
    body = json.dumps(_sanitize(payload), sort_keys=True).encode("utf-8")
    return Response(status=status, body=body,
                    content_type="application/json",
                    headers=dict(headers or {}))


def error_response(status: int, message: str,
                   headers: dict[str, str] | None = None) -> Response:
    return json_response({"error": {"status": status, "message": message}},
                         status=status, headers=headers)


def _call_with_timeout(fn, timeout_s: float | None):
    """Run ``fn`` with a hard wall-clock bound (504 on expiry).

    The worker thread is daemonic: a stuck handler cannot block
    shutdown, it is simply abandoned after its response slot expired.
    """
    if not timeout_s:
        return fn()
    box: dict[str, object] = {}

    def run() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:    # re-raised on the request thread
            box["error"] = exc

    t = threading.Thread(target=run, daemon=True, name="serve-handler")
    t.start()
    t.join(timeout_s)
    if t.is_alive():
        raise ServeError(504, f"request exceeded {timeout_s:g}s")
    if "error" in box:
        raise box["error"]              # type: ignore[misc]
    return box["value"]


class ServeApp:
    """Everything the server does, minus the sockets."""

    def __init__(self, workdirs, *, obs: RunContext | None = None,
                 llm_backend: str = "chart-analyst",
                 cache_entries: int = 128,
                 cache_bytes: int = 64 * 1024 * 1024,
                 job_workers: int = 2, job_capacity: int = 8,
                 request_timeout_s: float | None = 30.0,
                 max_body_bytes: int = 1 << 20,
                 retry_after_s: int = 1,
                 fabric: str | os.PathLike | None = None) -> None:
        self.registry = RunRegistry(workdirs)
        #: bounded history: a long-lived server must not accumulate an
        #: unbounded event/span record the way a batch run may
        self.obs = obs or RunContext(max_history=2048)
        self.hashes = default_hash_cache()
        self.cache = LRUCache(cache_entries, cache_bytes, obs=self.obs)
        self.jobs = JobQueue(workers=job_workers, capacity=job_capacity,
                             obs=self.obs)
        #: durable path: POSTs enqueue into the fabric store (executed
        #: by repro-launcher processes) instead of the in-memory queue
        self.fabric = None if fabric is None \
            else FabricStore(fabric, obs=self.obs)
        self.llm_backend = llm_backend
        self.request_timeout_s = request_timeout_s
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s
        self.started_s = time.time()
        self.router = self._build_router()

    def _build_router(self) -> Router:
        r = Router()
        r.get("/healthz", self._h_healthz)
        r.get("/metrics", self._h_metrics)
        r.get("/api/runs", self._h_runs)
        r.get("/api/runs/<id>/manifest", self._h_run_manifest)
        r.get("/api/runs/<id>/summary", self._h_run_summary)
        r.get("/api/runs/<id>/events", self._h_run_events)
        r.get("/api/runs/<id>/provenance", self._h_run_provenance)
        r.get("/api/artifacts/<name>", self._h_artifact)
        r.get("/api/charts", self._h_chart_index)
        r.get("/api/charts/<file>", self._h_chart)
        r.get("/api/jobs", self._h_jobs)
        r.get("/api/jobs/<id>", self._h_job)
        r.post("/api/insights", self._h_post_insight)
        r.post("/api/simulate", self._h_post_simulate)
        r.get("/api/campaigns", self._h_campaigns)
        r.get("/api/campaigns/<id>", self._h_campaign)
        r.post("/api/campaigns", self._h_post_campaign)
        r.get("/", self._h_dashboard)
        r.get("/dashboard", self._h_dashboard)
        r.get("/trace", self._h_trace)
        r.get("/charts/<file>", self._h_chart_page)
        return r

    # -- dispatch ----------------------------------------------------------------

    def dispatch(self, request: Request) -> Response:
        """Route and execute one request; never raises."""
        self.obs.counter("serve.http.requests").inc()
        try:
            route, params = self.router.resolve(request.method,
                                                request.path)
            if len(request.body) > self.max_body_bytes:
                raise ServeError(
                    413, f"body exceeds {self.max_body_bytes} bytes")
            with self.obs.span(f"http:{route.pattern}",
                               method=request.method):
                response = _call_with_timeout(
                    lambda: route.handler(request, params),
                    self.request_timeout_s)
        except ServeError as exc:
            response = error_response(exc.status, exc.message,
                                      headers=exc.headers)
        except ReproError as exc:
            response = error_response(400, str(exc))
        except Exception as exc:        # pragma: no cover - defensive
            self.obs.counter("serve.http.unhandled_errors").inc()
            response = error_response(
                500, f"internal error: {type(exc).__name__}: {exc}")
        self.obs.counter(
            f"serve.http.status.{response.status // 100}xx").inc()
        return response

    def close(self, timeout: float | None = 5.0) -> bool:
        """Graceful drain of the background queue (SIGTERM path).

        Durable jobs need no draining — that is the point: they sit in
        the fabric store and any launcher finishes them later.
        """
        finished = self.jobs.close(timeout)
        if self.fabric is not None:
            self.fabric.close()
        return finished

    def clear_caches(self) -> None:
        """Drop the response LRU and the hash memo (benchmark cold
        path; never needed in normal operation)."""
        self.cache.clear()
        self.hashes.clear()

    # -- shared helpers ------------------------------------------------------------

    def _run(self, request: Request,
             run_id: str | None = None) -> RunDir:
        run = self.registry.get(run_id or request.query.get("run"))
        if run is None:
            raise NotFound(f"unknown run "
                           f"{run_id or request.query.get('run')!r}")
        return run

    def _conditional(self, request: Request, etag: str,
                     factory, content_type: str,
                     cache_key=None) -> Response:
        """Strong-ETag conditional GET with optional LRU body reuse."""
        quoted = f'"{etag}"'
        if quoted in request.header("if-none-match"):
            self.obs.counter("serve.http.not_modified").inc()
            return Response(status=304, body=b"",
                            content_type=content_type,
                            headers={"ETag": quoted})
        if cache_key is not None:
            body, _hit = self.cache.get_or_put(cache_key, factory)
        else:
            body = factory()
        return Response(status=200, body=body, content_type=content_type,
                        headers={"ETag": quoted})

    def _serve_file(self, request: Request, path: str) -> Response:
        ext = os.path.splitext(path)[1].lower()
        ctype = _CTYPES.get(ext, "application/octet-stream")
        try:
            sha = self.hashes.sha256(path)
        except OSError:
            raise NotFound(f"missing file {os.path.basename(path)!r}") \
                from None

        def read() -> bytes:
            with open(path, "rb") as fh:
                return fh.read()

        return self._conditional(request, sha, read, ctype,
                                 cache_key=("file", sha))

    # -- service endpoints ---------------------------------------------------------

    def _h_healthz(self, request: Request, params: dict) -> Response:
        return json_response({
            "ok": True,
            "runs": [r.basename for r in self.registry.runs],
            "uptime_s": round(time.time() - self.started_s, 3),
        })

    def _h_metrics(self, request: Request, params: dict) -> Response:
        """Prometheus text exposition of the run context's registry."""
        lines = []
        for name, (kind, value) in \
                self.obs.metrics.typed_snapshot().items():
            metric = "repro_" + "".join(
                c if c.isalnum() else "_" for c in name)
            if kind == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {value:g}")
        body = ("\n".join(lines) + "\n").encode("utf-8")
        return Response(body=body,
                        content_type="text/plain; version=0.0.4; "
                                     "charset=utf-8")

    # -- run endpoints -------------------------------------------------------------

    def _h_runs(self, request: Request, params: dict) -> Response:
        return json_response({"runs": self.registry.list_runs()})

    def _h_run_manifest(self, request: Request, params: dict) -> Response:
        return json_response(self._run(request, params["id"]).manifest())

    def _h_run_summary(self, request: Request, params: dict) -> Response:
        return json_response(self._run(request, params["id"]).summary())

    def _h_run_events(self, request: Request, params: dict) -> Response:
        run = self._run(request, params["id"])
        limit = None
        if "limit" in request.query:
            try:
                limit = max(0, int(request.query["limit"]))
            except ValueError:
                raise ServeError(400, "limit must be an integer") \
                    from None
        events = run.events(kind=request.query.get("kind"), limit=limit)
        return json_response({"run_id": run.run_id, "n": len(events),
                              "events": events})

    def _h_run_provenance(self, request: Request,
                          params: dict) -> Response:
        run = self._run(request, params["id"])
        artifact = request.query.get("artifact")
        if artifact is None:
            return json_response(run.provenance())
        direction = request.query.get("direction", "up")
        try:
            return json_response(run.lineage(artifact, direction))
        except DataError as exc:
            status = 404 if "no provenance record" in str(exc) else 400
            raise ServeError(status, str(exc)) from None

    # -- artifact endpoint ---------------------------------------------------------

    def _negotiate(self, request: Request, path: str) -> str:
        """Target representation: ``csv``/``npf``/``json``/``raw``."""
        fmt = request.query.get("format")
        if fmt is not None:
            if fmt not in ("csv", "npf", "json", "raw"):
                raise ServeError(400, f"unknown format {fmt!r}; "
                                      f"want csv|npf|json|raw")
            return fmt
        accept = request.header("accept")
        tabular = path.endswith((".csv", ".npf"))
        if tabular and "application/json" in accept:
            return "json"
        if tabular and "application/x-npf" in accept:
            return "npf"
        if tabular and "text/csv" in accept:
            return "csv"
        return "raw"

    def _h_artifact(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact(params["name"])
        if path is None:
            raise NotFound(f"no artifact {params['name']!r} in run "
                           f"{run.basename!r}")
        fmt = self._negotiate(request, path)
        if fmt == "npf" and path.endswith(".csv"):
            # only a hash-verified twin may substitute for the CSV
            twin = resolve_table_path(path, hash_cache=self.hashes)
            if not twin.endswith(".npf"):
                raise ServeError(406, "no current .npf twin for "
                                      f"{params['name']!r}")
            path = twin
        elif fmt == "csv" and not path.endswith(".csv"):
            raise ServeError(406, f"{params['name']!r} has no CSV form")
        if fmt != "json":
            return self._serve_file(request, path)
        if not path.endswith((".csv", ".npf")):
            raise ServeError(406, f"{params['name']!r} is not tabular; "
                                  "only csv/npf convert to json")
        sha = self.hashes.sha256(path)

        def to_json() -> bytes:
            frame = read_table_fast(path, hash_cache=self.hashes)
            payload = {"name": params["name"], "n_rows": len(frame),
                       "columns": frame.to_dict()}
            return json.dumps(_sanitize(payload),
                              sort_keys=True).encode("utf-8")

        return self._conditional(request, sha + "-json", to_json,
                                 "application/json",
                                 cache_key=("artifact-json", sha))

    # -- chart endpoints -----------------------------------------------------------

    def _h_chart_index(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        return json_response({"run_id": run.run_id,
                              "charts": run.chart_keys()})

    def _render_chart(self, sidecar: str, ext: str) -> bytes:
        from repro.charts.render import Primitive
        from repro.charts.svg import primitives_to_svg
        with open(sidecar, encoding="utf-8") as fh:
            payload = json.load(fh)
        prims = [Primitive(**raw) for raw in payload["primitives"]]
        width = int(payload["width"])
        height = int(payload["height"])
        self.obs.counter("serve.charts.rendered").inc()
        if ext == "svg":
            return primitives_to_svg(prims, width, height).encode("utf-8")
        from repro.raster.draw import Canvas
        from repro.raster.png import encode_png
        canvas = Canvas(width, height)
        for prim in prims:
            canvas.draw(prim)
        return encode_png(canvas.to_uint8())

    def _h_chart(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        key, dot, ext = params["file"].rpartition(".")
        if not dot or ext not in ("svg", "png"):
            raise NotFound("chart endpoint serves <key>.svg or "
                           "<key>.png")
        sidecar = run.chart_sidecar(key)
        if sidecar is None:
            raise NotFound(f"no renderable chart {key!r} in run "
                           f"{run.basename!r}")
        sha = self.hashes.sha256(sidecar)
        ctype = _CTYPES[f".{ext}"]
        return self._conditional(
            request, f"{sha}-{ext}",
            lambda: self._render_chart(sidecar, ext), ctype,
            cache_key=("chart", sha, ext))

    def _h_chart_page(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        name = params["file"]
        if not name.endswith(".html"):
            name += ".html"
        path = run.find_artifact(f"charts/{name}")
        if path is None:
            raise NotFound(f"no chart page {params['file']!r}")
        return self._serve_file(request, path)

    # -- live pages ----------------------------------------------------------------

    def _h_dashboard(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact("dashboard/index.html")
        if path is None:
            # no dashboard yet: a minimal index so `/` always answers
            return json_response({
                "service": "repro.serve",
                "runs": [r.basename for r in self.registry.runs],
                "api": sorted({f"{r.method} {r.pattern}"
                               for r in self.router.routes}),
            })
        return self._serve_file(request, path)

    def _h_trace(self, request: Request, params: dict) -> Response:
        run = self._run(request)
        path = run.find_artifact("dashboard/trace.html")
        if path is None:
            raise NotFound(f"run {run.basename!r} has no trace page")
        return self._serve_file(request, path)

    # -- background jobs -----------------------------------------------------------

    def _h_jobs(self, request: Request, params: dict) -> Response:
        jobs = [j.to_dict() for j in self.jobs.list_jobs()]
        if self.fabric is not None:
            jobs += [j.to_dict() for j in self.fabric.list_jobs(
                campaign=request.query.get("campaign"),
                state=request.query.get("state"))]
        return json_response({"jobs": jobs})

    def _h_job(self, request: Request, params: dict) -> Response:
        job = self.jobs.get(params["id"])
        if job is not None:
            return json_response(job.to_dict())
        if self.fabric is not None:
            durable = self.fabric.get(params["id"])
            if durable is not None:
                out = durable.to_dict()
                if request.query.get("history") in ("1", "true"):
                    out["transitions"] = \
                        self.fabric.transitions(durable.id)
                return json_response(out)
        raise NotFound(f"no job {params['id']!r}")

    def _submit(self, kind: str, payload: dict, fn) -> Response:
        """Enqueue one job: durably when the fabric is on, else on the
        in-memory queue.  Same 202-plus-poll-URL contract either way."""
        if self.fabric is not None:
            durable = self.fabric.submit(kind, payload)
            return json_response({"job": durable.to_dict(),
                                  "poll": f"/api/jobs/{durable.id}"},
                                 status=202)
        try:
            job = self.jobs.submit(kind, fn)
        except QueueFull as exc:
            raise ServeError(
                429, str(exc),
                headers={"Retry-After": str(self.retry_after_s)}) \
                from None
        except QueueDraining as exc:
            raise ServeError(503, str(exc)) from None
        return json_response({"job": job.to_dict(),
                              "poll": f"/api/jobs/{job.id}"},
                             status=202)

    def _json_body(self, request: Request) -> dict:
        try:
            payload = json.loads(request.body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, ValueError):
            raise ServeError(400, "body must be JSON") from None
        if not isinstance(payload, dict):
            raise ServeError(400, "body must be a JSON object")
        return payload

    def _h_post_insight(self, request: Request, params: dict) -> Response:
        body = self._json_body(request)
        key = body.get("chart")
        if not isinstance(key, str) or not key:
            raise ServeError(400, 'body needs {"chart": "<key>"}')
        run = self._run(request, body.get("run"))
        if run.chart_sidecar(key) is None:
            raise NotFound(f"no renderable chart {key!r} in run "
                           f"{run.basename!r}")
        payload = {"run": run.run_id, "run_root": run.root,
                   "chart": key, "backend": self.llm_backend}
        return self._submit("insight", payload,
                            lambda: run_insight(payload, self.obs))

    def _h_post_simulate(self, request: Request, params: dict) -> Response:
        # validation errors (ReproError) surface as 400s in dispatch
        payload = simulate_payload(self._json_body(request))
        return self._submit("simulate", payload,
                            lambda: run_simulate(payload, self.obs))

    # -- campaigns (fabric only) ---------------------------------------------------

    def _fabric_or_503(self) -> FabricStore:
        if self.fabric is None:
            raise ServeError(503, "campaigns need the durable job "
                                  "fabric (start with repro-serve "
                                  "--fabric)")
        return self.fabric

    def _h_campaigns(self, request: Request, params: dict) -> Response:
        fabric = self._fabric_or_503()
        return json_response({"campaigns": fabric.list_campaigns()})

    def _h_campaign(self, request: Request, params: dict) -> Response:
        fabric = self._fabric_or_503()
        try:
            status = fabric.campaign_status(params["id"])
        except DataError:
            raise NotFound(f"no campaign {params['id']!r}") from None
        if request.query.get("jobs") in ("1", "true"):
            status["jobs"] = [j.to_dict() for j in
                              fabric.list_jobs(campaign=params["id"])]
        return json_response(status)

    def _h_post_campaign(self, request: Request, params: dict) -> Response:
        """Durably enqueue one parameter-sweep campaign (idempotent:
        resubmitting the same name+spec resumes it)."""
        fabric = self._fabric_or_503()
        body = self._json_body(request)
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ServeError(400, 'body needs {"name": "<campaign>"}')
        spec = body.get("spec", {})
        if not isinstance(spec, dict):
            raise ServeError(400, "spec must be a JSON object")
        status = submit_campaign(fabric, name, spec)
        return json_response(
            {"campaign": status,
             "poll": f"/api/campaigns/{status['id']}"}, status=202)
