"""``--procs N`` sharding: fork-per-shard accept loops on one port.

``SO_REUSEPORT`` lets N processes bind the same address and gives each
its *own* kernel accept queue — the kernel hashes incoming connections
across all bound sockets, so shards never contend on a shared accept
lock and one shard dying (even ``SIGKILL``) cannot corrupt a sibling's
queue.  The choreography here is deliberate:

1. the parent binds a throwaway ``SO_REUSEPORT`` socket first, purely
   to resolve ``--port 0`` to a concrete port every shard will share;
2. each forked child binds its *own* socket (separate accept queue)
   and writes one readiness byte to a pipe;
3. only after every child reports ready does the parent close its
   socket — closing it earlier would be fine, but keeping a bound,
   never-accepting ``SO_REUSEPORT`` socket open *after* children are
   serving would blackhole the fraction of connections the kernel
   hashes to it, so the parent socket's lifetime is kept minimal and
   explicit.

Shutdown mirrors the single-process path: the parent fans ``SIGTERM``
out to every shard, each shard drains gracefully (stop accepting,
finish in-flight responses, drain jobs), and the parent ``SIGKILL``\\ s
any shard still alive past the grace deadline (measured on
``time.monotonic()``).  An unexpected child death tears the whole
fleet down rather than serving with silently reduced capacity.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

from repro._util.errors import ReproError

__all__ = ["run_sharded", "sharding_supported", "reuseport_socket"]


def sharding_supported() -> bool:
    """Whether this platform can run ``--procs N > 1``."""
    return hasattr(socket, "SO_REUSEPORT") and hasattr(os, "fork")


def reuseport_socket(host: str, port: int,
                     backlog: int = 1024) -> socket.socket:
    """A listening socket siblings may also bind (separate queues)."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except OSError:
        sock.close()
        raise
    return sock


def _reap(children: dict[int, int | None]) -> None:
    """Collect any exited children without blocking."""
    while True:
        try:
            pid, status = os.waitpid(-1, os.WNOHANG)
        except ChildProcessError:
            return
        if pid == 0:
            return
        if pid in children:
            children[pid] = (os.waitstatus_to_exitcode(status)
                             if hasattr(os, "waitstatus_to_exitcode")
                             else status)


def run_sharded(procs: int, host: str, port: int, child_main, *,
                shutdown_grace_s: float = 20.0,
                on_ready=None) -> int:
    """Fork ``procs`` shards, each running ``child_main(shard, sock)``.

    ``child_main`` receives the shard index and a fresh
    ``SO_REUSEPORT`` listening socket; it must serve until SIGTERM and
    return an exit status (it runs inside the forked child and its
    return value becomes the child's exit code).  ``on_ready(host,
    port, pids)`` fires in the parent once every shard has bound and
    signalled readiness.  Returns the worst child exit status.
    """
    if procs < 2:
        raise ReproError("run_sharded wants procs >= 2; run the "
                         "server in-process for a single shard")
    if not sharding_supported():
        raise ReproError("--procs sharding needs SO_REUSEPORT and "
                         "fork(), unavailable on this platform")

    # resolve --port 0 once so every shard binds the same number
    resolver = reuseport_socket(host, port)
    bound_host, bound_port = resolver.getsockname()[:2]

    children: dict[int, int | None] = {}   # pid -> exit status
    ready_fds: list[int] = []
    for shard in range(procs):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:                        # pragma: no cover - child
            status = 1
            try:
                os.close(read_fd)
                resolver.close()
                for fd in ready_fds:
                    os.close(fd)
                sock = reuseport_socket(bound_host, bound_port)
                os.write(write_fd, b"\x01")
                os.close(write_fd)
                status = int(child_main(shard, sock) or 0)
            finally:
                os._exit(status)
        os.close(write_fd)
        children[pid] = None
        ready_fds.append(read_fd)

    stop = threading.Event()

    def _forward(signum, frame) -> None:    # pragma: no cover - signal
        stop.set()

    signal.signal(signal.SIGTERM, _forward)
    signal.signal(signal.SIGINT, _forward)

    ok = True
    for read_fd in ready_fds:
        if os.read(read_fd, 1) != b"\x01":  # EOF: child died binding
            ok = False
        os.close(read_fd)
    resolver.close()
    if not ok:
        stop.set()
    elif on_ready is not None:
        on_ready(bound_host, bound_port, sorted(children))

    def _alive() -> list[int]:
        return [pid for pid, status in children.items()
                if status is None]

    while not stop.is_set():
        _reap(children)
        if len(_alive()) < len(children):
            # a shard died underneath us: fold the fleet rather than
            # keep serving at silently reduced capacity
            stop.set()
            break
        stop.wait(timeout=0.2)

    for pid in _alive():
        try:
            os.kill(pid, signal.SIGTERM)
        except ProcessLookupError:
            pass
    deadline = time.monotonic() + shutdown_grace_s
    while _alive() and time.monotonic() < deadline:
        _reap(children)
        time.sleep(0.05)
    forced = False
    for pid in _alive():
        forced = True
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    _reap(children)
    while _alive():                         # pragma: no cover - defensive
        try:
            pid, status = os.waitpid(-1, 0)
        except ChildProcessError:
            break
        if pid in children:
            children[pid] = status
    worst = 0
    for status in children.values():
        code = status or 0
        if code < 0:                    # shard died on a signal
            code = 1
        worst = max(worst, code)
    if forced or not ok:
        worst = max(worst, 1)
    return worst
