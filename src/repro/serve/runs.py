"""Run discovery: the read-side model the service layer exposes.

A :class:`RunDir` wraps one completed workflow workdir (the directory
``repro-workflow --workdir`` wrote): it knows where the manifest files
live, reloads them only when their bytes change on disk, resolves
logical artifact names to files inside the run root (never outside —
path traversal is rejected), and answers lineage queries over the
provenance ledger.  A :class:`RunRegistry` maps run ids to run
directories for a server over several workdirs.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

from repro._util.errors import ConfigError, DataError
from repro.obs.context import (
    MANIFEST_EVENTS,
    MANIFEST_PROVENANCE,
    MANIFEST_SUMMARY,
)
from repro.serve.cache import LRUCache
from repro.store.artifact import FORMATS
from repro.store.store import LAYOUT

__all__ = ["RunDir", "RunRegistry"]

#: artifact-name search order: data formats first, then presentation
_SEARCH_FMTS = ("csv", "npf", "pipe", "html", "png", "md", "json")

#: parsed-manifest cache bounds (per RunDir): manifests are small, but
#: a long-lived server over many runs must not accumulate them forever
_MANIFEST_CACHE_ENTRIES = 64
_MANIFEST_CACHE_BYTES = 32 * 1024 * 1024


class _FileCache:
    """Parse a file at most once per on-disk version (stat-keyed).

    Bounded by entry count and by the on-disk bytes of the parsed
    sources, with the LRU discipline from :mod:`repro.serve.cache` —
    an unbounded dict here leaked every manifest a long-lived server
    ever touched.  A file too large for the byte bound is simply never
    cached (parsed per request) rather than evicting everything else.
    """

    def __init__(self, max_entries: int = _MANIFEST_CACHE_ENTRIES,
                 max_bytes: int = _MANIFEST_CACHE_BYTES) -> None:
        # entry layout: (stat_key, source_bytes, parsed_value)
        self._cache = LRUCache(max_entries, max_bytes,
                               sizer=lambda entry: entry[1])

    def load(self, path: str, parser):
        st = os.stat(path)
        key = (st.st_size, st.st_mtime_ns)
        entry = self._cache.get(path)
        if entry is not None and entry[0] == key:
            return entry[2]
        value = parser(path)
        self._cache.put(path, (key, st.st_size, value))
        return value

    def __len__(self) -> int:
        return len(self._cache)


def _parse_json(path: str):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class RunDir:
    """One completed workflow workdir, addressable over the API."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = os.path.abspath(os.fspath(root))
        if not os.path.isdir(self.root):
            raise ConfigError(f"run workdir {self.root!r} does not exist")
        self._cache = _FileCache()

    # -- identity ----------------------------------------------------------------

    @property
    def run_id(self) -> str:
        """The manifest's run id; the directory basename before a
        manifest exists."""
        try:
            return str(self.summary()["run_id"])
        except (DataError, KeyError, TypeError):
            return self.basename

    @property
    def basename(self) -> str:
        return os.path.basename(self.root.rstrip(os.sep))

    # -- manifest files ----------------------------------------------------------

    def _manifest_file(self, filename: str, parser):
        path = os.path.join(self.root, filename)
        try:
            return self._cache.load(path, parser)
        except OSError as exc:
            raise DataError(
                f"run {self.basename!r} has no {filename} "
                f"(not a finished workflow workdir?)") from exc

    def summary(self) -> dict:
        return self._manifest_file(MANIFEST_SUMMARY, _parse_json)

    def provenance(self) -> dict:
        return self._manifest_file(MANIFEST_PROVENANCE, _parse_json)

    def iter_events(self, kind: str | None = None):
        """Stream manifest events one parsed line at a time.

        Opens eagerly (so a missing manifest raises *here*, before a
        transport has committed to a 200) and never materializes the
        file — a paper-scale ``events.jsonl`` flows through in
        constant memory.
        """
        path = os.path.join(self.root, MANIFEST_EVENTS)
        try:
            fh = open(path, encoding="utf-8")
        except OSError as exc:
            raise DataError(
                f"run {self.basename!r} has no {MANIFEST_EVENTS} "
                f"(not a finished workflow workdir?)") from exc
        return self._iter_events_fh(fh, kind)

    @staticmethod
    def _iter_events_fh(fh, kind: str | None):
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if kind is None or event.get("kind") == kind:
                    yield event

    def events(self, kind: str | None = None,
               limit: int | None = None) -> list[dict]:
        """Filtered events; ``limit`` keeps the *tail* (most recent).

        Streams line-by-line through a bounded deque — the old
        implementation parsed the entire file into a list first, which
        at paper scale meant loading millions of events to answer
        ``?limit=5``.
        """
        if limit is not None and limit >= 0:
            tail: deque = deque(maxlen=limit)
            for event in self.iter_events(kind):
                tail.append(event)
            return list(tail)
        return list(self.iter_events(kind))

    def manifest(self) -> dict:
        """What this run exposes: the manifest files plus a summary of
        the API-addressable content."""
        files = {}
        for name in (MANIFEST_EVENTS, MANIFEST_PROVENANCE,
                     MANIFEST_SUMMARY):
            path = os.path.join(self.root, name)
            entry = {"exists": os.path.exists(path)}
            if entry["exists"]:
                entry["bytes"] = os.path.getsize(path)
            files[name] = entry
        return {
            "run_id": self.run_id,
            "workdir": self.basename,
            "files": files,
            "n_artifacts": len(self._records()),
        }

    # -- artifact resolution -------------------------------------------------------

    def _safe_join(self, rel: str) -> str | None:
        """Resolve a run-relative path; ``None`` when it escapes the
        run root (``..``, absolute paths, symlink-free normalization)."""
        if os.path.isabs(rel):
            return None
        path = os.path.normpath(os.path.join(self.root, rel))
        if path == self.root or path.startswith(self.root + os.sep):
            return path
        return None

    def find_artifact(self, name: str) -> str | None:
        """The on-disk file for a logical artifact name.

        Accepts either a bare logical name (``2024-01-jobs``, searched
        across the store layout with every known extension) or a
        run-relative path (``data/2024-01-jobs.csv``).  Returns ``None``
        when nothing matches inside the run root.
        """
        if "/" in name or os.sep in name or os.path.splitext(name)[1]:
            path = self._safe_join(name)
            if path and os.path.isfile(path):
                return path
            return None
        for fmt in _SEARCH_FMTS:
            path = os.path.join(self.root, LAYOUT[fmt],
                                name + FORMATS[fmt])
            if os.path.isfile(path):
                return path
        return None

    def chart_sidecar(self, key: str) -> str | None:
        """The primitives sidecar for chart ``key`` (what on-demand
        SVG/PNG rendering consumes)."""
        if "/" in key or os.sep in key or ".." in key:
            return None
        path = os.path.join(self.root, LAYOUT["html"],
                            key + ".html.prims.json")
        return path if os.path.isfile(path) else None

    def chart_keys(self) -> list[str]:
        """Chart keys with a renderable primitives sidecar."""
        charts_dir = os.path.join(self.root, LAYOUT["html"])
        try:
            names = os.listdir(charts_dir)
        except OSError:
            return []
        suffix = ".html.prims.json"
        return sorted(n[:-len(suffix)] for n in names
                      if n.endswith(suffix))

    # -- lineage -------------------------------------------------------------------

    def _records(self) -> list[dict]:
        try:
            return list(self.provenance().get("artifacts", []))
        except DataError:
            return []

    def lineage(self, artifact: str, direction: str = "up") -> dict:
        """Transitive provenance closure of one artifact path.

        ``up`` walks declared inputs (ancestors: what this file was made
        from); ``down`` walks consumers (descendants: everything made
        from it).  Paths are the ledger's run-root-relative form.
        """
        if direction not in ("up", "down"):
            raise DataError(f"lineage direction must be up|down, "
                            f"got {direction!r}")
        records = self._records()
        by_path = {r["path"]: r for r in records}
        parents: dict[str, list[str]] = {
            r["path"]: list(r.get("inputs", [])) for r in records}
        children: dict[str, list[str]] = {}
        for path, inputs in parents.items():
            for inp in inputs:
                children.setdefault(inp, []).append(path)
        if artifact not in by_path and artifact not in children:
            raise DataError(f"no provenance record for {artifact!r}")
        step = parents if direction == "up" else children
        seen: list[str] = []
        edges: list[tuple[str, str]] = []
        frontier = [artifact]
        visited = {artifact}
        while frontier:
            path = frontier.pop(0)
            seen.append(path)
            for nxt in step.get(path, []):
                edge = (nxt, path) if direction == "up" else (path, nxt)
                edges.append(edge)
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        return {
            "artifact": artifact,
            "direction": direction,
            "nodes": [
                by_path.get(p, {"path": p, "external": True})
                for p in seen],
            "edges": sorted(set(edges)),
        }


class RunRegistry:
    """Run id → :class:`RunDir` over one or more served workdirs.

    With an ``ingest_dir``, the registry is *live*: ``add`` registers
    a freshly ingested run without a restart, and :meth:`refresh`
    picks up runs a sibling shard ingested into the shared directory
    (each shard is a separate process; the filesystem is the only
    channel they share).
    """

    def __init__(self, workdirs, ingest_dir: str | None = None) -> None:
        self.runs: list[RunDir] = [RunDir(w) for w in workdirs]
        if not self.runs:
            raise ConfigError("serve needs at least one --workdir")
        self.ingest_dir = (os.path.abspath(os.fspath(ingest_dir))
                           if ingest_dir is not None else None)
        self._lock = threading.Lock()
        seen: dict[str, RunDir] = {}
        for run in self.runs:
            if run.basename in seen:
                raise ConfigError(
                    f"duplicate workdir basename {run.basename!r}")
            seen[run.basename] = run
        if self.ingest_dir is not None:
            os.makedirs(self.ingest_dir, exist_ok=True)
            self.refresh()

    @property
    def default(self) -> RunDir:
        return self.runs[0]

    def _snapshot(self) -> list[RunDir]:
        with self._lock:
            return list(self.runs)

    def add(self, root: str | os.PathLike) -> RunDir:
        """Hot-register a run directory (the ingest commit step)."""
        run = RunDir(root)
        with self._lock:
            if any(r.basename == run.basename for r in self.runs):
                raise ConfigError(
                    f"run {run.basename!r} is already registered")
            self.runs.append(run)
        return run

    def refresh(self) -> list[RunDir]:
        """Register runs that appeared in the ingest directory (a
        sibling shard's ingests); returns the newly added ones."""
        if self.ingest_dir is None:
            return []
        try:
            names = sorted(os.listdir(self.ingest_dir))
        except OSError:
            return []
        with self._lock:
            known = {r.basename for r in self.runs}
        added: list[RunDir] = []
        for name in names:
            if name.startswith(".") or name in known:
                continue                # dot-prefixed: in-flight temp
            root = os.path.join(self.ingest_dir, name)
            if not os.path.isfile(os.path.join(root, MANIFEST_SUMMARY)):
                continue
            try:
                added.append(self.add(root))
            except ConfigError:
                continue                # raced with a local ingest
        return added

    def get(self, run_id: str | None) -> RunDir | None:
        """Resolve by manifest run id or workdir basename; ``None`` of
        an unknown id (the default run when no id is given)."""
        if run_id is None:
            return self.default
        found = self._find(run_id)
        if found is None and self.ingest_dir is not None \
                and self.refresh():
            found = self._find(run_id)
        return found

    def _find(self, run_id: str) -> RunDir | None:
        runs = self._snapshot()
        for run in runs:
            if run.basename == run_id:
                return run
        for run in runs:
            try:
                if run.run_id == run_id:
                    return run
            except DataError:
                continue
        return None

    def list_runs(self) -> list[dict]:
        self.refresh()
        out = []
        for run in self._snapshot():
            entry = {"id": run.run_id, "workdir": run.basename}
            try:
                summary = run.summary()
                entry["n_events"] = summary.get("n_events")
                entry["n_artifacts"] = summary.get("n_artifacts")
                entry["metrics"] = len(summary.get("metrics", {}))
            except DataError:
                entry["incomplete"] = True
            out.append(entry)
        return out
