"""Per-client token-bucket rate limiting for the serve transports.

One bucket per peer address: ``rate`` tokens refill per second up to
``burst``; a request spends one token; an empty bucket means 429 with a
``Retry-After`` the client can actually obey (the seconds until one
token exists again).  Refill arithmetic runs on ``time.monotonic()`` —
a wall-clock step must never mint or destroy tokens.

The bucket table is bounded: peers that have fully refilled are pruned
once the table passes ``max_peers``, so a scan across many source
addresses cannot grow server memory without limit.
"""

from __future__ import annotations

import threading
import time

__all__ = ["RateLimiter"]


class RateLimiter:
    """Token buckets keyed by peer address (monotonic clock)."""

    def __init__(self, rate: float, burst: int | None = None,
                 max_peers: int = 4096,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (requests/second)")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None
                           else max(1, round(rate)))
        if self.burst < 1:
            raise ValueError("burst must allow at least one request")
        self.max_peers = max_peers
        self._clock = clock
        self._lock = threading.Lock()
        #: peer -> (tokens, last_refill_monotonic)
        self._buckets: dict[str, tuple[float, float]] = {}

    def allow(self, peer: str) -> tuple[bool, float]:
        """Spend one token for ``peer``.

        Returns ``(allowed, retry_after_s)`` — ``retry_after_s`` is 0
        when allowed, else the seconds until a token will exist.
        """
        now = self._clock()
        with self._lock:
            tokens, last = self._buckets.get(peer, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                self._buckets[peer] = (tokens - 1.0, now)
                self._prune_locked(now)
                return True, 0.0
            self._buckets[peer] = (tokens, now)
            self._prune_locked(now)
            return False, (1.0 - tokens) / self.rate

    def _prune_locked(self, now: float) -> None:
        """Drop peers whose buckets have refilled to full (they carry
        no state worth keeping) once the table outgrows its bound."""
        if len(self._buckets) <= self.max_peers:
            return
        full = [p for p, (tokens, last) in self._buckets.items()
                if tokens + (now - last) * self.rate >= self.burst]
        for p in full:
            del self._buckets[p]
        if len(self._buckets) > self.max_peers:
            # every remaining peer is mid-burst; drop oldest readings
            by_age = sorted(self._buckets.items(), key=lambda kv: kv[1][1])
            for p, _ in by_age[:len(self._buckets) - self.max_peers]:
                del self._buckets[p]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
