"""The event-loop HTTP transport: one thread of readiness, no blocking.

``ThreadingHTTPServer`` spends one OS thread per connection, which caps
a box at a few hundred concurrent keep-alive clients.  This transport
replaces it with a single ``selectors``-based loop that owns every
socket: non-blocking accept, incremental request parsing
(:mod:`repro.serve.proto`), deadline enforcement (a slowloris client
trickling header bytes is cut at the header timeout, an idle keep-alive
connection at the idle timeout), and write-readiness-driven response
flushing.  The loop never executes a handler: every complete request is
dispatched to a bounded worker pool, so a slow ``.npf`` read or chart
render occupies a pool slot, not the accept path.

Responses flow back through a per-connection outbox with byte-bounded
backpressure: a worker streaming a large chunked body blocks (on the
*worker* thread) once the outbox passes its high-water mark and resumes
as the loop drains it to the socket — a slow client throttles its own
response instead of buffering it in server memory.

Requests pipelined on one connection are answered strictly in order;
per-client token-bucket rate limiting (:mod:`repro.serve.limit`)
answers 429 + ``Retry-After`` before a request ever reaches the pool.
"""

from __future__ import annotations

import math
import selectors
import socket
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.serve.api import Request, Response, error_response
from repro.serve.limit import RateLimiter
from repro.serve.proto import (
    CHUNK_END,
    ParsedRequest,
    ProtocolError,
    RequestParser,
    encode_chunk,
    response_head,
)

__all__ = ["EventLoopServer"]

#: outbox byte bounds: a worker pushing response bytes blocks above
#: HIGH and resumes below LOW as the loop drains to the socket
_HIGH_WATER = 1 << 20
_LOW_WATER = 256 * 1024
_RECV_SIZE = 64 * 1024


class _EndOfResponse:
    """Outbox marker: everything before it is one complete response."""

    __slots__ = ("close",)

    def __init__(self, close: bool) -> None:
        self.close = close


class _Connection:
    """Per-socket state.  Attribute ownership is split: the loop thread
    owns parser/pending/deadline/interest; outbox fields are shared and
    guarded by ``lock``; workers only touch the outbox (via the
    server's ``_push``) and read ``closed``."""

    __slots__ = ("sock", "peer", "parser", "pending", "lock", "can_push",
                 "outbox", "outbox_bytes", "dispatching", "close_after",
                 "closed", "error", "reject_input", "continue_sent",
                 "deadline", "deadline_kind", "interest")

    def __init__(self, sock: socket.socket, peer: str,
                 parser: RequestParser) -> None:
        self.sock = sock
        self.peer = peer
        self.parser = parser
        self.pending: deque[ParsedRequest] = deque()
        self.lock = threading.Lock()
        self.can_push = threading.Condition(self.lock)
        self.outbox: deque = deque()
        self.outbox_bytes = 0
        self.dispatching = False
        self.close_after = False
        self.closed = False
        self.error = False
        self.reject_input = False
        self.continue_sent = False
        self.deadline: float | None = None
        self.deadline_kind = ""
        self.interest = selectors.EVENT_READ


class EventLoopServer:
    """Socket lifecycle around one :class:`ServeApp`, event-loop style.

    Drop-in surface parity with the threaded ``ServeServer``:
    ``address``/``url``, ``start()``, ``serve_forever()``,
    ``close(graceful=, timeout=)``.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0, *,
                 sock: socket.socket | None = None,
                 handler_threads: int = 8,
                 idle_timeout_s: float = 60.0,
                 header_timeout_s: float = 10.0,
                 rate_limit: RateLimiter | None = None,
                 backlog: int = 1024,
                 verbose: bool = False) -> None:
        self.app = app
        self.idle_timeout_s = idle_timeout_s
        self.header_timeout_s = header_timeout_s
        self.rate_limit = rate_limit
        self.verbose = verbose
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, port))
            sock.listen(backlog)
        self.listener = sock
        self.listener.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._pool = ThreadPoolExecutor(
            max_workers=handler_threads,
            thread_name_prefix="serve-loop-handler")
        self._conns: set[_Connection] = set()
        self._stop_evt = threading.Event()
        self._drain_evt = threading.Event()
        self._done_evt = threading.Event()      # loop fully exited
        self._wake_lock = threading.Lock()
        self._dirty: set[_Connection] = set()
        r, w = socket.socketpair()
        r.setblocking(False)
        w.setblocking(False)
        self._wake_r, self._wake_w = r, w
        self._thread: threading.Thread | None = None
        self._listener_open = True
        #: the transport-level body cap must admit the largest body any
        #: route accepts (the ingest archive path dwarfs the JSON one)
        self._body_cap = getattr(app, "transport_body_cap",
                                 app.max_body_bytes)

    # -- addressing ----------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self.listener.getsockname()[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- wakeup plumbing -----------------------------------------------------------

    def _mark_dirty(self, conn: _Connection) -> None:
        with self._wake_lock:
            self._dirty.add(conn)
        self._wake()

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass                        # a wakeup is already pending

    def _drain_wakeups(self) -> list[_Connection]:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass
        with self._wake_lock:
            dirty = list(self._dirty)
            self._dirty.clear()
        return dirty

    # -- metrics -------------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.app.obs.counter(name).inc()

    def _gauge_open(self) -> None:
        self.app.obs.gauge("serve.loop.open").set(len(self._conns))

    # -- lifecycle -----------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the readiness loop until :meth:`close` stops it."""
        self._sel.register(self.listener, selectors.EVENT_READ, None)
        self._sel.register(self._wake_r, selectors.EVENT_READ, None)
        next_sweep = 0.0
        try:
            while not self._stop_evt.is_set():
                if self._drain_evt.is_set() and self._listener_open:
                    self._sel.unregister(self.listener)
                    self.listener.close()
                    with self._wake_lock:
                        self._listener_open = False
                timeout = self._select_timeout()
                for key, mask in self._sel.select(timeout):
                    if key.data is None:
                        if key.fileobj is self._wake_r:
                            for conn in self._drain_wakeups():
                                if conn in self._conns:
                                    self._service(conn)
                        else:
                            self._accept()
                        continue
                    conn = key.data
                    if conn not in self._conns:
                        continue        # closed earlier this iteration
                    if mask & selectors.EVENT_READ:
                        self._on_read(conn)
                    if conn in self._conns \
                            and mask & selectors.EVENT_WRITE:
                        self._service(conn)
                now = time.monotonic()
                if now >= next_sweep or self._drain_evt.is_set():
                    self._sweep(now)
                    next_sweep = now + 0.25
        finally:
            for conn in list(self._conns):
                self._close_conn(conn)
            if self._listener_open:
                self._sel.unregister(self.listener)
                self.listener.close()
                with self._wake_lock:
                    self._listener_open = False
            self._sel.unregister(self._wake_r)
            self._sel.close()
            self._done_evt.set()

    def start(self) -> "EventLoopServer":
        """Serve on a daemon thread (tests, benchmarks, embedding)."""
        thread = threading.Thread(target=self.serve_forever,
                                  daemon=True, name="repro-serve-loop")
        with self._wake_lock:
            self._thread = thread
        thread.start()
        return self

    def close(self, graceful: bool = True,
              timeout: float | None = 10.0) -> bool:
        """Stop accepting, let in-flight responses finish, drain the
        job queue.  Returns ``True`` when everything completed."""
        self._drain_evt.set()
        self._wake()
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while self._conns and self._thread is not None \
                and self._thread.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.01)
        self._stop_evt.set()
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        else:
            self._done_evt.wait(timeout=5.0)
        self._pool.shutdown(wait=False)
        try:
            self._wake_r.close()
            self._wake_w.close()
        except OSError:                 # pragma: no cover - defensive
            pass
        if graceful:
            return self.app.close(timeout)
        return self.app.jobs.drain(timeout=0)

    # -- loop internals ------------------------------------------------------------

    def _select_timeout(self) -> float:
        nearest = None
        for conn in self._conns:
            if conn.deadline is not None:
                nearest = conn.deadline if nearest is None \
                    else min(nearest, conn.deadline)
        if nearest is None:
            return 0.25 if self._drain_evt.is_set() else 0.5
        return min(0.5, max(0.0, nearest - time.monotonic()))

    def _accept(self) -> None:
        while True:
            try:
                sock, addr = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            if self._drain_evt.is_set():
                sock.close()
                continue
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:             # pragma: no cover - platform
                pass
            peer = addr[0] if isinstance(addr, tuple) else str(addr)
            conn = _Connection(sock, peer, RequestParser(
                max_body_bytes=self._body_cap))
            conn.deadline = time.monotonic() + self.idle_timeout_s
            conn.deadline_kind = "idle"
            self._conns.add(conn)
            self._sel.register(sock, selectors.EVENT_READ, conn)
            self._count("serve.loop.accepted")
            self._gauge_open()

    def _on_read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(_RECV_SIZE)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            # peer closed its write side; if a response is still being
            # produced or flushed, let it finish — otherwise done
            with conn.lock:
                busy = conn.dispatching or bool(conn.outbox)
            if busy:
                conn.reject_input = True
                self._update_interest(conn)
            else:
                self._close_conn(conn)
            return
        if conn.reject_input:
            return                      # poisoned: draining the error out
        try:
            requests = conn.parser.feed(data)
        except ProtocolError as exc:
            self._count("serve.loop.bad_requests")
            self._enqueue_response(
                conn, error_response(exc.status, exc.message),
                close=True)
            conn.reject_input = True
            self._service(conn)
            return
        if conn.parser.expects_continue and not conn.continue_sent:
            conn.continue_sent = True
            with conn.lock:
                frame = b"HTTP/1.1 100 Continue\r\n\r\n"
                conn.outbox.append(frame)
                conn.outbox_bytes += len(frame)
        if requests:
            conn.pending.extend(requests)
            conn.continue_sent = False
        self._service(conn)

    def _service(self, conn: _Connection) -> None:
        """Flush what the socket will take, process response boundaries,
        start the next pipelined dispatch — the loop-thread driver."""
        while not conn.closed:
            self._flush_outbox(conn)
            if conn.error:
                self._close_conn(conn)
                return
            if conn.dispatching or not conn.pending:
                break
            if not self._begin(conn, conn.pending.popleft()):
                continue                # answered inline (rate limit)
            break
        if conn.closed:
            return
        with conn.lock:
            outbox_empty = not conn.outbox
        if conn.close_after and outbox_empty and not conn.dispatching:
            self._close_conn(conn)
            return
        if self._drain_evt.is_set() and outbox_empty \
                and not conn.dispatching and not conn.pending \
                and not conn.parser.mid_request:
            self._close_conn(conn)
            return
        self._arm_deadline(conn)
        self._update_interest(conn)

    def _begin(self, conn: _Connection, req: ParsedRequest) -> bool:
        """Hand one request to the pool; ``False`` when it was answered
        inline (rate-limited) and the next may start immediately."""
        if self.rate_limit is not None:
            allowed, retry_s = self.rate_limit.allow(conn.peer)
            if not allowed:
                self._count("serve.http.rate_limited")
                response = error_response(
                    429, "rate limit exceeded; slow down",
                    headers={"Retry-After":
                             str(max(1, math.ceil(retry_s)))})
                self._enqueue_response(
                    conn, response,
                    close=not req.keep_alive or self._drain_evt.is_set())
                return False
        conn.dispatching = True
        conn.deadline = None
        self._pool.submit(self._handle, conn, req)
        return True

    def _flush_outbox(self, conn: _Connection) -> None:
        with conn.lock:
            while conn.outbox:
                item = conn.outbox[0]
                if isinstance(item, _EndOfResponse):
                    conn.outbox.popleft()
                    conn.dispatching = False
                    conn.close_after = conn.close_after or item.close
                    continue
                try:
                    n = conn.sock.send(item)
                except (BlockingIOError, InterruptedError):
                    break
                except OSError:
                    conn.error = True
                    break
                conn.outbox_bytes -= n
                if n == len(item):
                    conn.outbox.popleft()
                else:
                    conn.outbox[0] = memoryview(item)[n:]
                    break
            if conn.outbox_bytes <= _LOW_WATER:
                conn.can_push.notify_all()

    def _arm_deadline(self, conn: _Connection) -> None:
        if conn.dispatching:
            conn.deadline = None
            conn.deadline_kind = ""
            return
        now = time.monotonic()
        if conn.parser.mid_request:
            # fixed from the first partial byte: a slowloris sender
            # trickling one header byte per tick must not reset it
            if conn.deadline_kind != "header":
                conn.deadline = now + self.header_timeout_s
                conn.deadline_kind = "header"
        else:
            conn.deadline = now + self.idle_timeout_s
            conn.deadline_kind = "idle"

    def _update_interest(self, conn: _Connection) -> None:
        if conn.closed:
            return
        with conn.lock:
            want_write = bool(conn.outbox)
        interest = selectors.EVENT_WRITE if want_write else 0
        if not conn.reject_input:
            interest |= selectors.EVENT_READ
        if interest == 0:
            interest = selectors.EVENT_READ
        if interest != conn.interest:
            conn.interest = interest
            try:
                self._sel.modify(conn.sock, interest, conn)
            except (KeyError, ValueError, OSError):
                pass                    # pragma: no cover - racing close

    def _sweep(self, now: float) -> None:
        for conn in list(self._conns):
            draining_idle = (self._drain_evt.is_set()
                             and not conn.dispatching
                             and not conn.pending
                             and not conn.outbox)
            if draining_idle:
                self._close_conn(conn)
                continue
            if conn.deadline is None or now < conn.deadline:
                continue
            self._count("serve.loop.timeouts")
            if conn.deadline_kind == "header":
                # slowloris: answer 408 best-effort, then cut
                response = error_response(408, "request header timeout")
                head = response_head(response.status, [
                    ("Content-Type", response.content_type),
                    ("Content-Length", str(len(response.body))),
                    ("Connection", "close")])
                try:
                    conn.sock.send(head + response.body)
                except OSError:
                    pass
            self._close_conn(conn)

    def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        with conn.lock:
            conn.closed = True
            conn.can_push.notify_all()
        self._conns.discard(conn)
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            conn.sock.close()
        except OSError:                 # pragma: no cover - defensive
            pass
        self._gauge_open()

    # -- worker side ---------------------------------------------------------------

    def _push(self, conn: _Connection, data) -> bool:
        """Queue outbound data from a worker thread, blocking above the
        outbox high-water mark; ``False`` once the connection died."""
        with conn.can_push:
            while conn.outbox_bytes > _HIGH_WATER and not conn.closed:
                conn.can_push.wait(timeout=0.5)
            if conn.closed:
                return False
            conn.outbox.append(data)
            if not isinstance(data, _EndOfResponse):
                conn.outbox_bytes += len(data)
        self._mark_dirty(conn)
        return True

    def _enqueue_response(self, conn: _Connection, response: Response,
                          close: bool) -> None:
        """Loop-thread path: serialize a small response without
        blocking on the high-water mark (error/429 bodies are tiny)."""
        head = response_head(response.status, [
            ("Content-Type", response.content_type),
            ("Content-Length", str(len(response.body))),
            *response.headers.items(),
            ("Connection", "close" if close else "keep-alive")])
        with conn.lock:
            conn.outbox.append(head + response.body)
            conn.outbox_bytes += len(head) + len(response.body)
            conn.outbox.append(_EndOfResponse(close))

    def _to_request(self, raw: ParsedRequest) -> Request:
        split = urlsplit(raw.target)
        return Request(
            method="GET" if raw.method == "HEAD" else raw.method,
            path=unquote(split.path),
            query=dict(parse_qsl(split.query)),
            headers=raw.headers,
            body=raw.body)

    def _handle(self, conn: _Connection, raw: ParsedRequest) -> None:
        """Worker thread: dispatch, serialize, stream into the outbox."""
        try:
            response = self.app.dispatch(self._to_request(raw))
        except Exception as exc:        # dispatch() never raises; belt
            self._count("serve.http.unhandled_errors")
            response = error_response(
                500, f"transport error: {type(exc).__name__}")
        close = (not raw.keep_alive) or self._drain_evt.is_set()
        suppress = raw.method == "HEAD" or response.status in (204, 304)
        body = response.body
        streaming = not isinstance(body, (bytes, bytearray))
        if streaming and raw.version == "HTTP/1.0":
            # no chunked transfer before HTTP/1.1: materialize
            body = b"".join(bytes(c) for c in body)
            streaming = False

        headers = list(response.headers.items())
        have = {name.lower() for name, _ in headers}
        if response.status == 304:
            headers.append(("Content-Length", "0"))
        else:
            if "content-type" not in have:
                headers.append(("Content-Type", response.content_type))
            if streaming:
                headers.append(("Transfer-Encoding", "chunked"))
            else:
                headers.append(("Content-Length", str(len(body))))
        headers.append(("Connection",
                        "close" if close else "keep-alive"))
        ok = self._push(conn, response_head(response.status, headers))

        if streaming:
            self._count("serve.loop.streamed")
            completed = ok
            if suppress:
                closer = getattr(body, "close", None)
                if closer is not None:
                    closer()
            else:
                try:
                    for chunk in body:
                        if not ok:
                            completed = False
                            break
                        chunk = bytes(chunk)
                        if chunk:
                            ok = self._push(conn, encode_chunk(chunk))
                            completed = ok
                except Exception:
                    # mid-stream failure after the 200 head went out:
                    # truncate the chunked framing so the client sees a
                    # broken transfer, never a silently short body
                    self._count("serve.http.unhandled_errors")
                    completed = False
            if completed:
                self._push(conn, CHUNK_END)
            else:
                close = True
        elif ok and not suppress and len(body):
            self._push(conn, bytes(body))
        self._push(conn, _EndOfResponse(close))
