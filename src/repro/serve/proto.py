"""Incremental HTTP/1.1 wire protocol: parser state machine + encoder.

The event-loop transport (:mod:`repro.serve.loop`) never blocks on a
socket, so it cannot use file-like request parsing the way the stdlib
``BaseHTTPRequestHandler`` does.  :class:`RequestParser` is the
replacement: a per-connection state machine fed whatever bytes the
socket produced, emitting zero or more complete requests per feed —
which is exactly what keep-alive and pipelining require (several
requests may sit in one TCP segment, or one request may trickle in
over many).

Deliberate limits (each maps to a concrete HTTP status):

- request head larger than ``max_head_bytes`` → 431;
- declared or accumulated body larger than ``max_body_bytes`` → 413;
- ``Transfer-Encoding: chunked`` request bodies are *decoded* (the
  streaming ingest path wants them), any other transfer coding → 501;
- both ``Content-Length`` and ``Transfer-Encoding`` present → 400
  (request smuggling vector — never guess);
- malformed request line, header, or chunk framing → 400.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from http.client import responses as _REASONS

from repro._util.errors import ReproError

__all__ = ["ParsedRequest", "ProtocolError", "RequestParser",
           "response_head", "encode_chunk", "CHUNK_END"]

#: terminating frame of a chunked response body
CHUNK_END = b"0\r\n\r\n"

_MAX_HEAD_BYTES = 32 * 1024
_CRLF = b"\r\n"


class ProtocolError(ReproError):
    """A request the parser refuses; carries the HTTP status to send.

    Protocol errors always close the connection after the error
    response: the read stream is no longer in a known state.
    """

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ParsedRequest:
    """One complete request off the wire."""

    method: str
    target: str                 # raw request target (path + query)
    version: str                # "HTTP/1.1" | "HTTP/1.0"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in conn
        return "close" not in conn


class RequestParser:
    """Feed bytes in, get complete :class:`ParsedRequest`\\ s out.

    States: ``head`` (accumulating up to the blank line), ``body``
    (fixed ``Content-Length`` remainder), ``chunk-size`` /
    ``chunk-data`` / ``chunk-crlf`` / ``trailers`` (chunked decoding).
    A :class:`ProtocolError` poisons the parser — the transport must
    send the error and close.
    """

    def __init__(self, max_head_bytes: int = _MAX_HEAD_BYTES,
                 max_body_bytes: int = 1 << 20) -> None:
        self.max_head_bytes = max_head_bytes
        self.max_body_bytes = max_body_bytes
        self._buf = bytearray()
        self._state = "head"
        self._req: ParsedRequest | None = None
        self._body = bytearray()
        self._remaining = 0

    @property
    def mid_request(self) -> bool:
        """Whether a request has started but not finished arriving —
        the window the header/slowloris timeout applies to."""
        return self._state != "head" or len(self._buf) > 0

    @property
    def expects_continue(self) -> bool:
        """A body-bearing request announced ``Expect: 100-continue``
        and is still owed the interim response."""
        return (self._req is not None and self._state != "head"
                and "100-continue" in
                self._req.headers.get("expect", "").lower())

    # -- feeding -----------------------------------------------------------------

    def feed(self, data: bytes) -> list[ParsedRequest]:
        """Consume ``data``; return every request it completed."""
        self._buf += data
        out: list[ParsedRequest] = []
        while True:
            made = self._step()
            if made is None:
                return out
            out.append(made)

    def _step(self) -> ParsedRequest | None:
        if self._state == "head":
            return self._parse_head()
        if self._state == "body":
            return self._parse_body()
        return self._parse_chunked()

    # -- head --------------------------------------------------------------------

    def _parse_head(self) -> ParsedRequest | None:
        end = self._buf.find(b"\r\n\r\n")
        if end < 0:
            if len(self._buf) > self.max_head_bytes:
                raise ProtocolError(431, "request head exceeds "
                                         f"{self.max_head_bytes} bytes")
            return None
        if end + 4 > self.max_head_bytes:
            # an oversized head is refused even when it arrived whole
            # in one segment — the bound is on the head, not on how
            # the kernel happened to chop it
            raise ProtocolError(431, "request head exceeds "
                                     f"{self.max_head_bytes} bytes")
        head = bytes(self._buf[:end])
        del self._buf[:end + 4]
        lines = head.split(_CRLF)
        parts = lines[0].split(b" ")
        if len(parts) != 3 or not parts[0] or not parts[1]:
            raise ProtocolError(400, "malformed request line")
        version = parts[2].decode("latin-1")
        if version not in ("HTTP/1.1", "HTTP/1.0"):
            raise ProtocolError(400, f"unsupported version {version!r}")
        headers: dict[str, str] = {}
        for raw in lines[1:]:
            name, sep, value = raw.partition(b":")
            if not sep or not name or name.strip() != name:
                raise ProtocolError(400, "malformed header line")
            key = name.decode("latin-1").lower()
            val = value.strip().decode("latin-1")
            if key in headers:
                headers[key] += ", " + val
            else:
                headers[key] = val
        self._req = ParsedRequest(
            method=parts[0].decode("latin-1").upper(),
            target=parts[1].decode("latin-1"),
            version=version, headers=headers)
        return self._start_body(headers)

    def _start_body(self, headers: dict[str, str]) -> ParsedRequest | None:
        te = headers.get("transfer-encoding", "").lower().strip()
        cl = headers.get("content-length")
        if te and cl is not None:
            raise ProtocolError(
                400, "both Content-Length and Transfer-Encoding")
        if te:
            if te != "chunked":
                raise ProtocolError(
                    501, f"unsupported transfer coding {te!r}")
            self._state = "chunk-size"
            self._body = bytearray()
            return self._parse_chunked()
        length = 0
        if cl is not None:
            try:
                length = int(cl)
            except ValueError:
                length = -1
            if length < 0:
                raise ProtocolError(400, "bad Content-Length")
        if length > self.max_body_bytes:
            raise ProtocolError(413, f"declared body of {length} bytes "
                                     f"exceeds {self.max_body_bytes}")
        if length == 0:
            return self._finish(b"")
        self._state = "body"
        self._body = bytearray()
        self._remaining = length
        return self._parse_body()

    # -- fixed-length body -------------------------------------------------------

    def _parse_body(self) -> ParsedRequest | None:
        take = min(self._remaining, len(self._buf))
        if take:
            self._body += self._buf[:take]
            del self._buf[:take]
            self._remaining -= take
        if self._remaining:
            return None
        return self._finish(bytes(self._body))

    # -- chunked body ------------------------------------------------------------

    def _parse_chunked(self) -> ParsedRequest | None:
        while True:
            if self._state == "chunk-size":
                line = self._take_line()
                if line is None:
                    return None
                size_part = line.split(b";", 1)[0].strip()
                try:
                    size = int(size_part, 16)
                except ValueError:
                    raise ProtocolError(400, "bad chunk size") from None
                if size < 0:
                    raise ProtocolError(400, "bad chunk size")
                if size == 0:
                    self._state = "trailers"
                    continue
                if len(self._body) + size > self.max_body_bytes:
                    raise ProtocolError(
                        413, "chunked body exceeds "
                             f"{self.max_body_bytes} bytes")
                self._remaining = size
                self._state = "chunk-data"
            elif self._state == "chunk-data":
                take = min(self._remaining, len(self._buf))
                if take:
                    self._body += self._buf[:take]
                    del self._buf[:take]
                    self._remaining -= take
                if self._remaining:
                    return None
                self._state = "chunk-crlf"
            elif self._state == "chunk-crlf":
                if len(self._buf) < 2:
                    return None
                if self._buf[:2] != _CRLF:
                    raise ProtocolError(400, "chunk missing CRLF")
                del self._buf[:2]
                self._state = "chunk-size"
            else:                       # trailers
                line = self._take_line()
                if line is None:
                    return None
                if line == b"":
                    return self._finish(bytes(self._body))
                # trailer fields are tolerated and dropped

    def _take_line(self) -> bytes | None:
        idx = self._buf.find(_CRLF)
        if idx < 0:
            if len(self._buf) > self.max_head_bytes:
                raise ProtocolError(400, "unterminated chunk line")
            return None
        line = bytes(self._buf[:idx])
        del self._buf[:idx + 2]
        return line

    # -- completion --------------------------------------------------------------

    def _finish(self, body: bytes) -> ParsedRequest:
        req = self._req
        assert req is not None
        req.body = body
        self._req = None
        self._state = "head"
        self._remaining = 0
        self._body = bytearray()
        return req


# -- response encoding -------------------------------------------------------------


def response_head(status: int, headers: list[tuple[str, str]],
                  version: str = "HTTP/1.1") -> bytes:
    """Serialize the status line and header block (through the blank
    line); the transport appends the body frames."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"{version} {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def encode_chunk(data: bytes) -> bytes:
    """One ``Transfer-Encoding: chunked`` body frame."""
    return b"%x\r\n%s\r\n" % (len(data), data)
