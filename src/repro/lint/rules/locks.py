"""RL02x — lock discipline.

Two of this repo's last three bugfixes were unlocked writes to shared
state in classes that *already owned a lock*: the ``AccountingDB``
lazy sort (PR 4) and the ``LLMClient`` request log (PR 5).  The rule
generalizes both: in any class that owns a ``threading.Lock`` /
``RLock`` / ``Condition``, a write to a ``self._*`` attribute outside
a lexical ``with self.<lock>:`` block is a finding.

The check is lexical on purpose — "the caller holds the lock" is a
contract the AST cannot see, so the repo encodes it by convention:
methods named ``*_locked`` assert their caller holds the lock and are
exempt (``ArtifactStore._load_stamps_locked``,
``SchedulingAnalysisWorkflow._ensure_db_locked``).  Constructors
(``__init__`` / ``__post_init__`` / ``__new__``) run before the object
is shared and are exempt too.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__",
                             "__del__", "__copy__", "__deepcopy__"})


def _self_attr(node: ast.AST) -> str | None:
    """``self._x`` → ``"_x"`` (else None)."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attribute names this class assigns a Lock/RLock/Condition to."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        is_lock = (isinstance(value, ast.Call)
                   and ((isinstance(value.func, ast.Attribute)
                         and value.func.attr in _LOCK_FACTORIES)
                        or (isinstance(value.func, ast.Name)
                            and value.func.id in _LOCK_FACTORIES)))
        if not is_lock:
            continue
        for target in node.targets:
            attr = _self_attr(target)
            if attr:
                locks.add(attr)
    return locks


class LockDisciplineRule(Rule):
    """RL021: unguarded write to ``self._*`` in a lock-owning class."""

    id = "RL021"
    title = "unguarded shared-state write"
    node_types = (ast.ClassDef,)

    def visit(self, cls: ast.ClassDef, ctx: FileContext) -> None:
        locks = _lock_attrs(cls)
        if not locks:
            return
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if stmt.name in _EXEMPT_METHODS \
                    or stmt.name.endswith("_locked"):
                continue
            for body_stmt in stmt.body:
                self._scan(body_stmt, guarded=False, locks=locks,
                           method=stmt.name, ctx=ctx)

    def _scan(self, node: ast.AST, guarded: bool, locks: set[str],
              method: str, ctx: FileContext) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            holds = any(_self_attr(item.context_expr) in locks
                        for item in node.items)
            for child in node.body:
                self._scan(child, guarded or holds, locks, method, ctx)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)) \
                and getattr(node, "value", True) is not None:
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                attr = _self_attr(target)
                if (attr and attr.startswith("_")
                        and not attr.startswith("__")
                        and attr not in locks and not guarded):
                    ctx.report(self.id, target,
                               f"write to self.{attr} in {method}() "
                               f"outside `with self.{sorted(locks)[0]}` "
                               "— this class shares state across "
                               "threads; guard the write, or name the "
                               "method *_locked if the caller holds "
                               "the lock")
        for child in ast.iter_child_nodes(node):
            self._scan(child, guarded, locks, method, ctx)
