"""RL04x — artifact-path hygiene.

PR 4 replaced string-path plumbing with typed ``Artifact`` handles:
``store.declare(name, fmt)`` (or ``Artifact.in_dir``) owns the
extension, the directory layout, and the schema hint.  A raw
``"…-jobs.csv"`` literal in pipeline/workflow/analytics code
re-implements that arithmetic by hand and silently diverges the moment
the layout (or the ``.npf`` twin negotiation) changes — so any string
literal ending in ``.csv``/``.npf`` in those packages is a finding.

The bare extension tokens (``".csv"``) used for ``endswith`` checks and
format tables are exempt, as are docstrings.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule

__all__ = ["ArtifactPathRule"]

_EXTENSIONS = (".csv", ".npf")


class ArtifactPathRule(Rule):
    """RL041: raw ``.csv``/``.npf`` path literal instead of a handle."""

    id = "RL041"
    title = "raw artifact-path literal"
    node_types = (ast.Constant,)
    dirs = ("pipeline", "workflows", "analytics")

    def visit(self, node: ast.Constant, ctx: FileContext) -> None:
        value = node.value
        if not isinstance(value, str) or value in _EXTENSIONS:
            return
        if not value.endswith(_EXTENSIONS):
            return
        if ctx.is_docstring(node):
            return
        ctx.report(self.id, node,
                   f"raw artifact path literal {value!r}; declare a "
                   "typed handle instead (store.declare(name, fmt) or "
                   "Artifact.in_dir) so the format owns the extension "
                   "and the layout")
