"""RL04x — artifact-path hygiene.

PR 4 replaced string-path plumbing with typed ``Artifact`` handles:
``store.declare(name, fmt)`` (or ``Artifact.in_dir``) owns the
extension, the directory layout, and the schema hint.  A raw
``"…-jobs.csv"`` literal in pipeline/workflow/analytics code
re-implements that arithmetic by hand and silently diverges the moment
the layout (or the ``.npf`` twin negotiation) changes — so any string
literal ending in ``.csv``/``.npf`` in those packages is a finding.

The bare extension tokens (``".csv"``) used for ``endswith`` checks and
format tables are exempt, as are docstrings.

RL042 guards the paper-scale streaming contract: an analytics module
that declares ``__streaming__ = True`` has committed to bounded-memory
chunked loading (:func:`repro.store.iter_table_fast`); a full-table
``read_table``/``read_table_fast`` call there silently reintroduces the
O(year) materialization the shard pipeline exists to avoid.  Known-small
reads carry an inline ``# lint: ok[RL042] reason`` waiver.
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, attr_chain

__all__ = ["ArtifactPathRule", "StreamingReadRule"]

_EXTENSIONS = (".csv", ".npf")


class ArtifactPathRule(Rule):
    """RL041: raw ``.csv``/``.npf`` path literal instead of a handle."""

    id = "RL041"
    title = "raw artifact-path literal"
    node_types = (ast.Constant,)
    dirs = ("pipeline", "workflows", "analytics")

    def visit(self, node: ast.Constant, ctx: FileContext) -> None:
        value = node.value
        if not isinstance(value, str) or value in _EXTENSIONS:
            return
        if not value.endswith(_EXTENSIONS):
            return
        if ctx.is_docstring(node):
            return
        ctx.report(self.id, node,
                   f"raw artifact path literal {value!r}; declare a "
                   "typed handle instead (store.declare(name, fmt) or "
                   "Artifact.in_dir) so the format owns the extension "
                   "and the layout")


class StreamingReadRule(Rule):
    """RL042: full-table read in a streaming-designated module."""

    id = "RL042"
    title = "full-table read in a streaming module"
    node_types = (ast.Call,)
    dirs = ("analytics",)

    _READERS = ("read_table", "read_table_fast")

    @staticmethod
    def _streaming_module(ctx: FileContext) -> bool:
        """Whether the module declares ``__streaming__ = True`` at top
        level (cached on the context: one scan per file)."""
        flag = getattr(ctx, "_rl042_streaming", None)
        if flag is None:
            flag = False
            for stmt in ctx.tree.body:
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if (isinstance(target, ast.Name)
                                and target.id == "__streaming__"):
                            flag = (isinstance(stmt.value, ast.Constant)
                                    and bool(stmt.value.value))
            ctx._rl042_streaming = flag
        return flag

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        chain = attr_chain(node.func)
        if not chain or chain[-1] not in self._READERS:
            return
        if not self._streaming_module(ctx):
            return
        ctx.report(self.id, node,
                   f"full-table {chain[-1]}() in a module that declares "
                   "__streaming__ = True; route through iter_table_fast "
                   "(or load_jobs/load_steps with materialize=False) so "
                   "memory stays bounded at paper scale, or waive a "
                   "known-small read inline")
