"""The rule catalog: one module per rule family.

=======  =========================================================
RL011    unseeded or global-state RNG construction
RL012    builtin ``hash()`` feeding seeds / persisted keys
RL013    wall clock inside deterministic packages (sched/flow/frame)
RL014    unordered set iteration on serialization-adjacent paths
RL021    unguarded ``self._*`` write in a lock-owning class
RL031    ``bus.emit`` kind missing from the taxonomy
RL032    ``counter``/``gauge`` name missing from the taxonomy
RL033    metric used as the wrong kind
RL034    registry entry nothing emits (complete scans only)
RL041    raw ``.csv``/``.npf`` path literal instead of a handle
RL042    full-table read in a streaming-designated module
RL051    bare ``except:``
RL052    broad exception silently swallowed
RL053    405 built without an ``Allow`` header (serve only)
=======  =========================================================

See docs/architecture.md ("Static analysis") for the catalog with
rationale and docs/extending.md for how to write a new rule.
"""

from __future__ import annotations

from repro.lint.rules.artifacts import ArtifactPathRule, StreamingReadRule
from repro.lint.rules.determinism import (
    SaltedHashRule,
    SetIterationRule,
    UnseededRngRule,
    WallClockRule,
)
from repro.lint.rules.errors import (
    BareExceptRule,
    SwallowedExceptionRule,
    Unallowed405Rule,
)
from repro.lint.rules.locks import LockDisciplineRule
from repro.lint.rules.taxonomy import TaxonomyRule

__all__ = ["all_rules", "RULE_FAMILIES"]

#: family id prefix → human name (the catalog's table of contents)
RULE_FAMILIES = {
    "RL01": "determinism",
    "RL02": "lock discipline",
    "RL03": "event/metric taxonomy",
    "RL04": "artifact-path hygiene",
    "RL05": "error hygiene",
}


def all_rules() -> list:
    """Fresh instances of every registered rule (taxonomy rules carry
    per-run seen-name state, so instances are never shared)."""
    return [
        UnseededRngRule(),
        SaltedHashRule(),
        WallClockRule(),
        SetIterationRule(),
        LockDisciplineRule(),
        TaxonomyRule(),
        ArtifactPathRule(),
        StreamingReadRule(),
        BareExceptRule(),
        SwallowedExceptionRule(),
        Unallowed405Rule(),
    ]
