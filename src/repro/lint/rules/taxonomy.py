"""RL03x — event/metric taxonomy discipline.

Provenance is only queryable while the event vocabulary is closed
(Souza et al., "LLM Agents for Interactive Workflow Provenance"):
every ``bus.emit(kind, ...)`` literal must name a kind registered in
:mod:`repro.obs.taxonomy`, every ``counter("…")``/``gauge("…")``
literal must name a registered metric of that kind, and — the converse
drift — every non-dynamic registry entry must be emitted by at least
one callsite, or the registry is documenting vocabulary that no longer
exists (RL034; needs a complete scan, so it is skipped under
``--rule``/``--path`` filters).
"""

from __future__ import annotations

import ast
import os

from repro.lint.engine import (
    FileContext,
    Finding,
    LintEngine,
    Rule,
    str_const,
)
from repro.obs import taxonomy as _taxonomy

__all__ = ["TaxonomyRule"]

#: metric-reporting attribute names → the kind they register.
#: ``_count`` is the repo's standard optional-obs counter wrapper
#: (serve.jobs / serve.cache / store use it).
_METRIC_ATTRS = {"counter": "counter", "_count": "counter",
                 "gauge": "gauge"}


def _name_consts(node: ast.AST) -> list[str]:
    """String constants a name argument can evaluate to: a literal, or
    both arms of a conditional (the ``hits if … else misses`` idiom)."""
    value = str_const(node)
    if value is not None:
        return [value]
    if isinstance(node, ast.IfExp):
        return _name_consts(node.body) + _name_consts(node.orelse)
    return []


def _is_bus_emit(func: ast.AST) -> bool:
    """``bus.emit`` / ``self.bus.emit`` / ``ctx.bus.emit`` — the value
    the ``emit`` attribute hangs off must itself be named ``bus``."""
    if not (isinstance(func, ast.Attribute) and func.attr == "emit"):
        return False
    value = func.value
    return ((isinstance(value, ast.Name) and value.id == "bus")
            or (isinstance(value, ast.Attribute) and value.attr == "bus"))


class TaxonomyRule(Rule):
    """RL031/RL032/RL033 at callsites; RL034 at finish."""

    id = "RL031"
    title = "event/metric names match the declared taxonomy"
    node_types = (ast.Call,)

    def __init__(self, events: dict | None = None,
                 metrics: dict | None = None) -> None:
        #: injectable registries so the rule is testable against a
        #: synthetic taxonomy; defaults to the live one
        self.events = _taxonomy.EVENT_KINDS if events is None else events
        self.metrics = _taxonomy.METRICS if metrics is None else metrics
        self.seen_events: set[str] = set()
        self.seen_metrics: set[str] = set()

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if _is_bus_emit(node.func) and node.args:
            for kind in _name_consts(node.args[0]):
                self.seen_events.add(kind)
                if kind not in self.events:
                    ctx.report("RL031", node.args[0],
                               f"event kind {kind!r} is not registered "
                               "in repro.obs.taxonomy.EVENT_KINDS")
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _METRIC_ATTRS and node.args):
            return
        want_kind = _METRIC_ATTRS[func.attr]
        for name in _name_consts(node.args[0]):
            self.seen_metrics.add(name)
            entry = self.metrics.get(name)
            if entry is None:
                ctx.report("RL032", node.args[0],
                           f"metric {name!r} is not registered in "
                           "repro.obs.taxonomy.METRICS")
            elif entry.kind != want_kind:
                ctx.report("RL033", node.args[0],
                           f"metric {name!r} is registered as a "
                           f"{entry.kind} but used here as a "
                           f"{want_kind}")

    def finish(self, engine: LintEngine) -> list[Finding]:
        """RL034: registry entries no scanned callsite emits."""
        out: list[Finding] = []
        path, lines = self._registry_source()
        for kind in sorted(set(self.events) - self.seen_events):
            out.append(Finding(
                path=path, line=lines.get(kind, 1), col=1, rule="RL034",
                message=f"event kind {kind!r} is registered but no "
                        "scanned bus.emit() literal produces it"))
        for name in sorted(set(self.metrics) - self.seen_metrics):
            if getattr(self.metrics[name], "dynamic", False):
                continue
            out.append(Finding(
                path=path, line=lines.get(name, 1), col=1, rule="RL034",
                message=f"metric {name!r} is registered but no scanned "
                        "counter()/gauge() literal reports it"))
        return out

    def _registry_source(self) -> tuple[str, dict[str, int]]:
        """Registry file path + first line each name appears on, so
        RL034 findings point at the stale entry itself."""
        if self.events is not _taxonomy.EVENT_KINDS \
                or self.metrics is not _taxonomy.METRICS:
            return "<registry>", {}
        path = _taxonomy.__file__
        lines: dict[str, int] = {}
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
            names = set(self.events) | set(self.metrics)
            for node in ast.walk(ast.parse(source)):
                value = str_const(node)
                if value in names and value not in lines:
                    lines[value] = node.lineno
        except (OSError, SyntaxError):
            pass
        return os.path.relpath(path), lines
