"""RL05x — error hygiene.

A swallowed exception in a workflow stage is a provenance hole: the
run manifest records success for work that silently did nothing.  And
in the service layer, a hand-built 405 without an ``Allow`` header
violates RFC 9110 §15.5.6 (the router's ``MethodNotAllowed`` gets this
right; ad-hoc constructions tend not to).
"""

from __future__ import annotations

import ast

from repro.lint.engine import FileContext, Rule, attr_chain

__all__ = ["BareExceptRule", "SwallowedExceptionRule",
           "Unallowed405Rule"]

_BROAD = frozenset({"Exception", "BaseException"})


def _names_broad(type_node: ast.AST) -> bool:
    """Whether the handler type includes Exception/BaseException."""
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
        else [type_node]
    return any(isinstance(n, ast.Name) and n.id in _BROAD
               for n in nodes)


class BareExceptRule(Rule):
    """RL051: a bare ``except:`` (catches SystemExit and KeyboardInterrupt too)."""

    id = "RL051"
    title = "bare except"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is None:
            ctx.report(self.id, node,
                       "bare `except:` catches SystemExit and "
                       "KeyboardInterrupt; name the exceptions "
                       "(Exception at the broadest)")


class SwallowedExceptionRule(Rule):
    """RL052: broad handler whose entire body is ``pass``."""

    id = "RL052"
    title = "swallowed broad exception"
    node_types = (ast.ExceptHandler,)

    def visit(self, node: ast.ExceptHandler, ctx: FileContext) -> None:
        if node.type is not None and not _names_broad(node.type):
            return                      # narrow swallows are judgement calls
        if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            ctx.report(self.id, node,
                       "broad exception silently swallowed; at minimum "
                       "record it (metrics/bus) or narrow the type — "
                       "a provenance layer must not lose failures")


class Unallowed405Rule(Rule):
    """RL053: a 405 built in serve code without an ``Allow`` header."""

    id = "RL053"
    title = "405 without Allow"
    node_types = (ast.Call,)
    dirs = ("serve",)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        chain = attr_chain(node.func)
        if not chain or chain[-1] not in ("ServeError", "error_response",
                                          "Response"):
            return
        status = None
        if node.args and isinstance(node.args[0], ast.Constant):
            status = node.args[0].value
        for kw in node.keywords:
            if kw.arg == "status" and isinstance(kw.value, ast.Constant):
                status = kw.value.value
        if status != 405:
            return
        if not any(kw.arg == "headers" for kw in node.keywords):
            ctx.report(self.id, node,
                       "405 response without an Allow header (RFC 9110 "
                       "§15.5.6); pass headers={'Allow': ...} or raise "
                       "router.MethodNotAllowed")
