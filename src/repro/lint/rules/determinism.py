"""RL01x — determinism discipline.

The golden-trace equivalence tests and the byte-stable provenance
manifests only hold while every source of randomness is seeded through
``repro._util.rng`` substreams and every timestamp in simulation code
comes from the simulated clock.  These rules flag the four ways that
discipline has actually been broken (or nearly broken) in this repo's
history: unseeded RNG construction, the salted builtin ``hash()``
feeding seeds (the PR 2 ``window_seed`` bug), wall-clock reads inside
deterministic packages, and iteration over unordered sets on paths
that serialize.
"""

from __future__ import annotations

import ast
import os

from repro.lint.engine import FileContext, Rule, attr_chain

__all__ = ["UnseededRngRule", "SaltedHashRule", "WallClockRule",
           "SetIterationRule"]

#: packages whose outputs are golden-traced / content-hashed
_DETERMINISTIC_DIRS = ("sched", "flow", "frame", "pipeline",
                       "workflows", "obs", "store")

#: stdlib ``random`` / legacy ``numpy.random`` module-level entry
#: points that draw from hidden global state
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "seed",
    "rand", "randn", "random_sample", "normal", "permutation", "bytes",
})


class UnseededRngRule(Rule):
    """RL011: RNG constructed or drawn without an explicit seed."""

    id = "RL011"
    title = "unseeded or global-state RNG"
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        chain = attr_chain(node.func)
        if not chain:
            return
        if chain[-1] == "default_rng" and not node.args \
                and not node.keywords:
            ctx.report(self.id, node,
                       "np.random.default_rng() without a seed is "
                       "fresh OS entropy per call; derive the seed "
                       "from repro._util.rng substreams")
            return
        # random.X(...) / np.random.X(...): hidden global state
        if len(chain) >= 2 and chain[-2] == "random" \
                and chain[-1] in _GLOBAL_RNG_FNS:
            ctx.report(self.id, node,
                       f"{'.'.join(chain)}() draws from hidden global "
                       "RNG state; construct a seeded Generator "
                       "instead")


class SaltedHashRule(Rule):
    """RL012: builtin ``hash()`` feeding seeds or persisted keys."""

    id = "RL012"
    title = "salted builtin hash()"
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            ctx.report(self.id, node,
                       "builtin hash() is salted per process "
                       "(PYTHONHASHSEED); a seed or persisted key "
                       "derived from it differs across runs — use "
                       "zlib.crc32 or hashlib instead")


class WallClockRule(Rule):
    """RL013: wall-clock reads in deterministic or timing-sensitive
    packages.

    ``sched``/``flow``/``frame`` are the determinism case: simulated
    timestamps must come from the simulated clock.  ``serve`` is the
    timing-correctness case: the rate limiter, idle/header timeouts,
    and drain deadlines must be measured on ``time.monotonic()`` — a
    wall-clock step (NTP correction, VM resume) must never mint rate
    tokens or cut a healthy connection.  Display timestamps go
    through ``repro._util.clock.wall_now``, the one audited read.
    """

    id = "RL013"
    title = "wall clock in simulation code"
    node_types = (ast.Call,)
    dirs = ("sched", "flow", "frame", "serve")

    def visit(self, node: ast.Call, ctx: FileContext) -> None:
        chain = attr_chain(node.func)
        if not chain:
            return
        in_serve = "serve" in os.path.normpath(ctx.path).split(os.sep)
        dotted = ".".join(chain)
        if dotted in ("time.time", "time.time_ns"):
            if in_serve:
                ctx.report(self.id, node,
                           f"{dotted}() on a serve timing path; "
                           "timeouts, deadlines, and rate-token "
                           "refills must use time.monotonic() — "
                           "display timestamps go through "
                           "repro._util.clock.wall_now()")
            else:
                ctx.report(self.id, node,
                           f"{dotted}() inside a deterministic "
                           "package; simulation timestamps must come "
                           "from the simulated clock (perf_counter "
                           "is fine for measuring, not for data)")
        elif chain[-1] in ("now", "utcnow", "today") \
                and chain[-2:-1] and chain[-2] in ("datetime", "date"):
            ctx.report(self.id, node,
                       f"{dotted}() inside a deterministic package; "
                       "wall-clock dates must not reach simulated "
                       "or serialized data")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


class SetIterationRule(Rule):
    """RL014: iterating a set where order can reach serialized output."""

    id = "RL014"
    title = "unordered set iteration"
    node_types = (ast.For, ast.ListComp, ast.SetComp, ast.DictComp,
                  ast.GeneratorExp)
    dirs = _DETERMINISTIC_DIRS

    _MSG = ("iteration order over a set is unspecified and (for "
            "strings) varies with PYTHONHASHSEED; wrap in sorted() "
            "before it can reach serialized output")

    def visit(self, node: ast.AST, ctx: FileContext) -> None:
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter):
                ctx.report(self.id, node.iter, self._MSG)
            return
        for gen in node.generators:          # comprehensions
            if _is_set_expr(gen.iter):
                ctx.report(self.id, gen.iter, self._MSG)
