"""``repro-lint`` — the command-line front end.

::

    repro-lint src benchmarks            # text findings, exit 1 if any
    repro-lint src --json                # machine-readable report
    repro-lint src --rule RL021          # one rule (or family: RL02)
    repro-lint src --path serve          # only files matching substring
    repro-lint src --list-rules          # the catalog
    repro-lint src --max-seconds 2       # CI perf gate (exit 2 if slower)

Cross-file checks (RL034, "registry entry nothing emits") run only on
complete scans: no ``--rule``/``--path`` filter and the scanned set
must include the flow engine (the main event emitter); a partial scan
would otherwise report every unseen registry entry as stale.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.lint.engine import LintEngine, iter_python_files
from repro.lint.rules import RULE_FAMILIES, all_rules

__all__ = ["main", "run_lint"]


def run_lint(roots, rule_filter=None, path_filter=None,
             complete: bool | None = None):
    """Lint ``roots``; returns ``(findings, engine)``.

    ``complete=None`` auto-detects whether cross-file rules may run
    (see module docstring).  This is the API tests and tools call; the
    CLI is a thin shell around it.
    """
    files = iter_python_files(roots)
    if path_filter:
        files = [f for f in files if path_filter in f]
    if complete is None:
        complete = (not rule_filter and not path_filter
                    and any(f.endswith(os.path.join("flow", "engine.py"))
                            for f in files))
    engine = LintEngine(all_rules(), complete=complete)
    findings = engine.run_files(files)
    if rule_filter:
        findings = [f for f in findings
                    if any(f.rule.startswith(r) for r in rule_filter)]
    return findings, engine


def _list_rules() -> str:
    lines = ["rule families:"]
    for prefix, family in sorted(RULE_FAMILIES.items()):
        lines.append(f"  {prefix}x  {family}")
    lines.append("rules:")
    for rule in all_rules():
        scope = f" [{'/'.join(rule.dirs)}]" if rule.dirs else ""
        lines.append(f"  {rule.id}  {rule.title}{scope}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro codebase")
    parser.add_argument("roots", nargs="*", default=["src"],
                        help="files or directories to scan "
                             "(default: src)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a JSON report on stdout")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RLxxx",
                        help="only report this rule id or family "
                             "prefix (repeatable)")
    parser.add_argument("--path", default=None, metavar="SUBSTR",
                        help="only scan files whose path contains "
                             "SUBSTR")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--max-seconds", type=float, default=None,
                        metavar="S",
                        help="fail (exit 2) if the scan takes longer "
                             "than S seconds (CI perf gate)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    t0 = time.perf_counter()
    findings, engine = run_lint(args.roots, rule_filter=args.rule,
                                path_filter=args.path)
    elapsed = time.perf_counter() - t0

    by_rule: dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1

    if args.as_json:
        print(json.dumps({
            "version": 1,
            "n_files": engine.n_files,
            "elapsed_s": round(elapsed, 3),
            "n_findings": len(findings),
            "n_suppressed": engine.n_suppressed,
            "by_rule": dict(sorted(by_rule.items())),
            "errors": engine.errors,
            "findings": [f.to_dict() for f in findings],
        }, indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.render())
        summary = (f"repro-lint: {engine.n_files} files, "
                   f"{len(findings)} finding(s)"
                   + (f", {engine.n_suppressed} suppressed"
                      if engine.n_suppressed else "")
                   + f" in {elapsed:.2f}s")
        print(summary, file=sys.stderr)

    for err in engine.errors:
        print(f"repro-lint: error: {err}", file=sys.stderr)
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(f"repro-lint: scan took {elapsed:.2f}s "
              f"(budget {args.max_seconds:g}s)", file=sys.stderr)
        return 2
    if engine.errors:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":             # pragma: no cover - module shim
    sys.exit(main())
