"""repro.lint — AST-based invariant linting for the repro codebase.

The rest of the repo encodes its contracts in conventions: seeded RNG
everywhere, ``self._*`` writes under the owning lock, a closed event
and metric vocabulary (:mod:`repro.obs.taxonomy`), typed artifact
handles instead of raw path strings, and no silently swallowed
failures.  This package turns those conventions into machine-checked
rules: a single-pass AST engine (:mod:`repro.lint.engine`), one module
per rule family (:mod:`repro.lint.rules`), and a CLI
(``python -m repro.lint`` / ``repro-lint``) wired into CI.

Findings are suppressible inline with ``# lint: ok[RL0xx] reason``;
the reason is mandatory by convention and the suppression count is
reported so drift stays visible.
"""

from repro.lint.cli import main, run_lint
from repro.lint.engine import (
    FileContext,
    Finding,
    LintEngine,
    Rule,
    iter_python_files,
)
from repro.lint.rules import RULE_FAMILIES, all_rules

__all__ = [
    "FileContext",
    "Finding",
    "LintEngine",
    "RULE_FAMILIES",
    "Rule",
    "all_rules",
    "iter_python_files",
    "main",
    "run_lint",
]
