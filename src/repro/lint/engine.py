"""The rule engine: one AST walk per file, pluggable rule dispatch.

``repro.lint`` is a repo-specific static-analysis pass: it machine-checks
the invariants the provenance/reproducibility stack relies on but which
Python cannot express in types — seed discipline, lock-guarded shared
state, the closed event/metric taxonomy, artifact-path hygiene, error
hygiene.  The engine is deliberately small:

- every file is read and parsed **once**; a single ``ast.walk`` visits
  each node once and dispatches it to the rules registered for that
  node type (rules may sub-walk the subtree they were handed — class
  bodies, ``try`` blocks — which stays linear in practice because those
  roots do not nest meaningfully);
- rules are plain objects with ``node_types`` + ``visit`` and an
  optional ``finish`` hook for whole-project checks (e.g. "this
  registry entry is emitted nowhere");
- findings carry ``(rule, path, line, col, message)`` and can be
  suppressed inline with ``# lint: ok[RL0xx] reason`` on the offending
  line.

Performance contract: a full ``src + benchmarks`` scan must stay under
two seconds (CI runs ``repro-lint --max-seconds 2``).
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

__all__ = ["Finding", "FileContext", "Rule", "LintEngine",
           "iter_python_files"]

#: inline suppression: ``# lint: ok[RL021] reason`` (reason encouraged;
#: ``RL02x`` family wildcards are deliberately NOT supported — each
#: suppression names exactly one rule)
_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ok\[(RL\d{3})\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


class FileContext:
    """Everything a rule may need about the file being walked."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.tree = tree
        self.lines = source.splitlines()
        self.findings: list[Finding] = []
        self.n_suppressed = 0
        self._docstrings: set[int] | None = None

    # -- reporting ---------------------------------------------------------------

    def suppressed(self, line: int, rule_id: str) -> bool:
        """Whether ``line`` carries an inline waiver for ``rule_id``."""
        if 1 <= line <= len(self.lines):
            for m in _SUPPRESS_RE.finditer(self.lines[line - 1]):
                if m.group(1) == rule_id:
                    return True
        return False

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if self.suppressed(line, rule_id):
            self.n_suppressed += 1
            return
        self.findings.append(Finding(
            path=self.path, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule_id, message=message))

    # -- shared AST helpers --------------------------------------------------------

    def is_docstring(self, node: ast.Constant) -> bool:
        """Whether this constant is a module/class/function docstring."""
        if self._docstrings is None:
            ds: set[int] = set()
            for n in ast.walk(self.tree):
                if isinstance(n, (ast.Module, ast.ClassDef,
                                  ast.FunctionDef, ast.AsyncFunctionDef)):
                    body = n.body
                    if (body and isinstance(body[0], ast.Expr)
                            and isinstance(body[0].value, ast.Constant)
                            and isinstance(body[0].value.value, str)):
                        ds.add(id(body[0].value))
            self._docstrings = ds
        return id(node) in self._docstrings


def attr_chain(node: ast.AST) -> list[str]:
    """``a.b.c`` → ``["a", "b", "c"]`` (empty for non-name bases)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def str_const(node: ast.AST) -> str | None:
    """The value of a string-literal node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


class Rule:
    """Base class every lint rule extends.

    Subclasses set :attr:`id` (``RL0xx``), :attr:`title`,
    :attr:`node_types` (the AST classes the engine dispatches), and
    optionally :attr:`dirs` — path segments (package directory names)
    the rule is scoped to; empty means every scanned file.
    """

    id: str = "RL000"
    title: str = ""
    node_types: tuple[type, ...] = ()
    dirs: tuple[str, ...] = ()

    def applies(self, path: str) -> bool:
        if not self.dirs:
            return True
        segments = os.path.normpath(path).split(os.sep)
        return any(d in segments for d in self.dirs)

    def visit(self, node: ast.AST, ctx: FileContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def finish(self, engine: "LintEngine") -> list[Finding]:
        """Whole-project findings, called once after every file."""
        return []


class LintEngine:
    """Walk files once; dispatch nodes to the registered rules."""

    def __init__(self, rules, complete: bool = True) -> None:
        self.rules: list[Rule] = list(rules)
        #: ``complete`` means the scan covers the whole tree the rules
        #: reason globally about; cross-file checks (RL034's "registry
        #: entry nothing emits") only run then, since a filtered scan
        #: would see partial usage and report nonsense
        self.complete = complete
        self.n_files = 0
        self.n_suppressed = 0
        self.errors: list[str] = []     # unparseable files

    def run_source(self, path: str, source: str) -> list[Finding]:
        """Lint one in-memory source blob (the test corpus entry)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.errors.append(f"{path}: {exc}")
            return []
        ctx = FileContext(path, source, tree)
        dispatch: dict[type, list[Rule]] = {}
        for rule in self.rules:
            if rule.applies(path):
                for nt in rule.node_types:
                    dispatch.setdefault(nt, []).append(rule)
        if dispatch:
            for node in ast.walk(tree):
                for rule in dispatch.get(type(node), ()):
                    rule.visit(node, ctx)
        self.n_files += 1
        self.n_suppressed += ctx.n_suppressed
        return ctx.findings

    def run_files(self, paths) -> list[Finding]:
        findings: list[Finding] = []
        for path in paths:
            try:
                with open(path, encoding="utf-8") as fh:
                    source = fh.read()
            except (OSError, UnicodeDecodeError) as exc:
                self.errors.append(f"{path}: {exc}")
                continue
            findings.extend(self.run_source(path, source))
        if self.complete:
            for rule in self.rules:
                findings.extend(rule.finish(self))
        return sorted(findings)


def iter_python_files(roots) -> list[str]:
    """Every ``.py`` under ``roots`` (files pass through), sorted,
    skipping hidden directories and ``__pycache__``."""
    out: list[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith(".")
                                 and d != "__pycache__")
            out.extend(os.path.join(dirpath, f)
                       for f in sorted(filenames) if f.endswith(".py"))
    return sorted(set(out))
