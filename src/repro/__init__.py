"""repro — reproduction of "An LLM-enabled Workflow for Understanding and
Evolving HPC Scheduling Practices" (WISDOM 2025).

The package provides:

- a Slurm accounting substrate (:mod:`repro.slurm`, :mod:`repro.cluster`,
  :mod:`repro.workload`, :mod:`repro.sched`) that synthesizes sacct-shaped
  job traces for Frontier-like and Andes-like systems,
- the paper's static data-analysis subworkflow (:mod:`repro.pipeline`,
  :mod:`repro.analytics`, :mod:`repro.charts`, :mod:`repro.dashboard`),
- the user-defined AI subworkflow (:mod:`repro.raster`, :mod:`repro.llm`),
- a Swift/T-style dataflow engine (:mod:`repro.flow`) and the composed
  end-to-end workflow (:mod:`repro.workflows`),
- future-work extensions (:mod:`repro.predict`).

Quickstart::

    from repro.workflows import SchedulingAnalysisWorkflow, WorkflowConfig

    cfg = WorkflowConfig(system="frontier", months=["2024-01", "2024-02"])
    result = SchedulingAnalysisWorkflow(cfg).run()
    print(result.dashboard_path)
"""

from repro._util.errors import ReproError

__all__ = ["ReproError", "__version__"]
__version__ = "1.0.0"
