"""One-call synthetic dataset construction.

Convenience for examples, tests, and benchmarks: simulate months on a
system profile, push them through Obtain + Curate, and return the
curated frames — the exact artifacts the paper's analytics consume.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

from repro.frame import Frame, concat, read_csv
from repro.pipeline import CurateStage, ObtainConfig, ObtainStage
from repro.sched import SimConfig, simulate_month
from repro.slurm.db import AccountingDB

__all__ = ["CuratedDataset", "synthesize_curated"]


@dataclass
class CuratedDataset:
    """Curated frames plus the database they came from."""

    system: str
    months: list[str]
    jobs: Frame
    steps: Frame
    db: AccountingDB
    workdir: str


def synthesize_curated(system: str, months: list[str], *,
                       seed: int = 13, rate_scale: float = 0.05,
                       malformed_rate: float = 0.002,
                       workdir: str | None = None) -> CuratedDataset:
    """Simulate ``months`` on ``system`` and run the data pipeline.

    ``workdir`` defaults to a fresh temporary directory; pass an existing
    one to get Obtain's caching across calls.
    """
    workdir = workdir or tempfile.mkdtemp(prefix=f"repro-{system}-")
    db = AccountingDB(system)
    for i, month in enumerate(months):
        result = simulate_month(
            system, month, seed=seed + i, rate_scale=rate_scale,
            config=SimConfig(seed=seed + i,
                             first_jobid=400_000 + 1_000_000 * i))
        db.extend(result.jobs)
    cfg = ObtainConfig(months[0], months[-1],
                       cache_dir=os.path.join(workdir, "cache"),
                       malformed_rate=malformed_rate, seed=seed)
    obtain = ObtainStage(db, cfg).run()
    curate = CurateStage(os.path.join(workdir, "curated"))
    jobs_frames, steps_frames = [], []
    for path in obtain.files:
        jobs_csv, steps_csv, _ = curate.run(path)
        jobs_frames.append(read_csv(jobs_csv))
        steps_frames.append(read_csv(steps_csv, infer=False))
    return CuratedDataset(
        system=system, months=list(months),
        jobs=concat(jobs_frames), steps=concat(steps_frames),
        db=db, workdir=workdir)
